"""repro.analysis: rule battery, suppressions, CLI, and the self-check.

Fixture trees reproduce the package layout (``<tmp>/repro/core/...``) so
path-scoped rules see the same relpaths they see in ``src/``.  The two
closing tests are the ones the subsystem exists for: the shipped tree
must lint clean, and the bank-equivalence declaration must match both
the statically-discovered ``bank_forward`` definers (BANK001) and the
layers actually instantiated by the equivalence matrix (runtime walk).
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from tests.conftest import BANK_EQUIVALENCE_LAYERS, equivalence_cases
from repro.analysis import RULES, run_analysis
from repro.analysis.cli import main as cli_main
from repro.analysis.cli import rules_table_markdown
from repro.analysis.findings import suppressions_for_line

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
CONFTEST = REPO_ROOT / "tests" / "conftest.py"


def _write_tree(base: Path, files: dict) -> Path:
    for relpath, source in files.items():
        target = base / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return base


def _run(tmp_path: Path, files: dict, select=None, conftest=None, ignore=None):
    """Analyze a fixture tree; rules are selected explicitly per test."""
    root = _write_tree(tmp_path / "tree", files)
    return run_analysis([root], select=select, ignore=ignore, conftest=conftest)


def _rules_of(report) -> list:
    return [f.rule for f in report.findings]


# -- DET001 ------------------------------------------------------------------


def test_det001_flags_legacy_global_numpy_rng(tmp_path):
    report = _run(
        tmp_path,
        {"repro/core/x.py": "import numpy as np\nv = np.random.rand(3)\n"},
        select=["DET001"],
    )
    (finding,) = report.findings
    assert finding.rule == "DET001"
    assert finding.line == 2
    assert finding.file.endswith("repro/core/x.py")


def test_det001_flags_unseeded_default_rng(tmp_path):
    report = _run(
        tmp_path,
        {"repro/x.py": "import numpy as np\nrng = np.random.default_rng()\n"},
        select=["DET001"],
    )
    assert _rules_of(report) == ["DET001"]
    assert "without a seed" in report.findings[0].message


def test_det001_steers_seeded_default_rng_to_check_random_state(tmp_path):
    report = _run(
        tmp_path,
        {"repro/x.py": "import numpy as np\nrng = np.random.default_rng(7)\n"},
        select=["DET001"],
    )
    assert _rules_of(report) == ["DET001"]
    assert "check_random_state" in report.findings[0].message


def test_det001_flags_stdlib_random(tmp_path):
    report = _run(
        tmp_path,
        {
            "repro/a.py": "import random\nx = random.random()\n",
            "repro/b.py": "from random import shuffle\n",
        },
        select=["DET001"],
    )
    assert sorted(_rules_of(report)) == ["DET001", "DET001"]


def test_det001_allows_generator_plumbing(tmp_path):
    source = (
        "import numpy as np\n"
        "from repro.utils.seeding import check_random_state\n"
        "def f(rng):\n"
        "    gen = check_random_state(rng)\n"
        "    assert isinstance(gen, np.random.Generator)\n"
        "    return gen.normal(size=3)\n"
    )
    report = _run(tmp_path, {"repro/x.py": source}, select=["DET001"])
    assert report.ok


# -- DET002 ------------------------------------------------------------------


def test_det002_flags_wall_clock_in_core(tmp_path):
    report = _run(
        tmp_path,
        {"repro/core/sim.py": "import time\nstart = time.time()\n"},
        select=["DET002"],
    )
    (finding,) = report.findings
    assert finding.rule == "DET002"
    assert finding.line == 2


def test_det002_flags_datetime_and_from_imports(tmp_path):
    report = _run(
        tmp_path,
        {
            "repro/runtime/a.py": "import datetime\nstamp = datetime.datetime.now()\n",
            "repro/distributed/b.py": "from time import perf_counter\nt = perf_counter()\n",
        },
        select=["DET002"],
    )
    assert sorted(_rules_of(report)) == ["DET002", "DET002"]


def test_det002_scope_excludes_presentation_code(tmp_path):
    report = _run(
        tmp_path,
        {"repro/viz/plots.py": "import time\nstart = time.time()\n"},
        select=["DET002"],
    )
    assert report.ok


def test_det002_covers_utils_with_suppression_escape(tmp_path):
    """utils/ is in scope (the profiler lives there); suppressions still work."""
    flagged = "import time\nstart = time.perf_counter()\n"
    sanctioned = (
        "import time\n"
        "start = time.perf_counter()  # repro: ignore[DET002] profiler wall time\n"
    )
    report = _run(
        tmp_path,
        {"repro/utils/timing.py": flagged, "repro/utils/prof.py": sanctioned},
        select=["DET002"],
    )
    assert _rules_of(report) == ["DET002"]
    assert report.findings[0].file.endswith("repro/utils/timing.py")
    assert report.suppressed == 1


# -- PERF001 -----------------------------------------------------------------


def test_perf001_flags_float64_coercion_in_bank_forward(tmp_path):
    source = (
        "import numpy as np\n"
        "class Layer:\n"
        "    def bank_forward(self, x, params, prefix=''):\n"
        "        data = np.asarray(x, dtype=float)\n"
        "        return data\n"
    )
    report = _run(tmp_path, {"repro/nn/x.py": source}, select=["PERF001"])
    (finding,) = report.findings
    assert finding.rule == "PERF001"
    assert finding.line == 4
    assert "bank_forward" in finding.message


def test_perf001_flags_np_float64_in_step(tmp_path):
    source = (
        "import numpy as np\n"
        "class Opt:\n"
        "    def step(self):\n"
        "        g = np.array(self.grad, dtype=np.float64)\n"
        "        self.p -= g\n"
    )
    report = _run(tmp_path, {"repro/optim/x.py": source}, select=["PERF001"])
    assert _rules_of(report) == ["PERF001"]


def test_perf001_allows_coercion_outside_hot_paths_and_dtype_preserving_calls(tmp_path):
    source = (
        "import numpy as np\n"
        "def broadcast_state(flat):\n"
        "    return np.asarray(flat, dtype=float)\n"
        "class Layer:\n"
        "    def bank_forward(self, x, params, prefix=''):\n"
        "        data = np.ascontiguousarray(x)\n"
        "        return np.asarray(data)\n"
    )
    report = _run(tmp_path, {"repro/nn/x.py": source}, select=["PERF001"])
    assert report.ok


# -- SPAWN001 ----------------------------------------------------------------


def test_spawn001_flags_lambda_target(tmp_path):
    source = (
        "import multiprocessing as mp\n"
        "p = mp.Process(target=lambda: 1, daemon=True)\n"
    )
    report = _run(tmp_path, {"repro/x.py": source}, select=["SPAWN001"])
    assert _rules_of(report) == ["SPAWN001"]


def test_spawn001_flags_nested_function_payload(tmp_path):
    source = (
        "def launch(pool, items):\n"
        "    def work(item):\n"
        "        return item + 1\n"
        "    return list(pool.imap_unordered(work, items))\n"
    )
    report = _run(tmp_path, {"repro/x.py": source}, select=["SPAWN001"])
    (finding,) = report.findings
    assert "another function" in finding.message
    assert finding.line == 4


def test_spawn001_flags_lambda_bound_name_and_lambda_args(tmp_path):
    source = (
        "work = lambda item: item + 1\n"  # noqa: E731 - fixture under test
        "def launch(pool, items):\n"
        "    return pool.map(work, items, key=lambda i: i)\n"
    )
    report = _run(tmp_path, {"repro/x.py": source}, select=["SPAWN001"])
    assert sorted(_rules_of(report)) == ["SPAWN001", "SPAWN001"]


def test_spawn001_allows_module_level_and_partial(tmp_path):
    source = (
        "import functools\n"
        "def work(item, scale):\n"
        "    return item * scale\n"
        "def launch(pool, items):\n"
        "    return pool.map(functools.partial(work, scale=2), items)\n"
        "def launch2(ctx, conn):\n"
        "    return ctx.Process(target=work, args=(conn, 1), daemon=True)\n"
    )
    report = _run(tmp_path, {"repro/x.py": source}, select=["SPAWN001"])
    assert report.ok


# -- SHM001 ------------------------------------------------------------------


def test_shm001_flags_class_creating_without_unlink(tmp_path):
    source = (
        "from multiprocessing import shared_memory\n"
        "class Plane:\n"
        "    def __init__(self, size):\n"
        "        self.seg = shared_memory.SharedMemory(create=True, size=size)\n"
        "    def close(self):\n"
        "        self.seg.close()\n"
    )
    report = _run(tmp_path, {"repro/x.py": source}, select=["SHM001"])
    (finding,) = report.findings
    assert finding.rule == "SHM001"
    assert "unlink()" in finding.message
    assert "close()" not in finding.message  # close IS present


def test_shm001_flags_module_level_create_with_no_teardown(tmp_path):
    source = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "SEG = SharedMemory('scratch', True, 64)\n"  # positional create=True
    )
    report = _run(tmp_path, {"repro/x.py": source}, select=["SHM001"])
    (finding,) = report.findings
    assert "close()" in finding.message and "unlink()" in finding.message
    assert finding.line == 2


def test_shm001_allows_owner_with_full_teardown_and_attach(tmp_path):
    source = (
        "from multiprocessing import shared_memory\n"
        "class Plane:\n"
        "    def __init__(self, size):\n"
        "        self.seg = shared_memory.SharedMemory(create=True, size=size)\n"
        "    def destroy(self):\n"
        "        self.seg.close()\n"
        "        self.seg.unlink()\n"
        "def attach(name):\n"
        "    return shared_memory.SharedMemory(name=name, create=False)\n"
    )
    report = _run(tmp_path, {"repro/x.py": source}, select=["SHM001"])
    assert report.ok


def test_shm001_ships_clean_on_the_real_transport_module(tmp_path):
    # The actual transport layer must satisfy its own rule.
    from pathlib import Path as _Path

    source = _Path("src/repro/distributed/transport.py").read_text()
    report = _run(tmp_path, {"repro/distributed/transport.py": source}, select=["SHM001"])
    assert report.ok


# -- HASH001 -----------------------------------------------------------------


def test_hash001_flags_unsorted_dumps_feeding_hash(tmp_path):
    source = (
        "import hashlib, json\n"
        "def address(payload):\n"
        "    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()\n"
    )
    report = _run(tmp_path, {"repro/anywhere.py": source}, select=["HASH001"])
    assert _rules_of(report) == ["HASH001"]
    assert "insertion order" in report.findings[0].message


def test_hash001_flags_any_unsorted_dumps_in_store_modules(tmp_path):
    report = _run(
        tmp_path,
        {"repro/sweep/store.py": "import json\ndef save(p, d):\n    p.write_text(json.dumps(d))\n"},
        select=["HASH001"],
    )
    # A bare dumps in a store module breaks both contracts at once:
    # canonical key order and RFC 8259 float portability.
    assert _rules_of(report) == ["HASH001", "HASH001"]
    messages = sorted(f.message for f in report.findings)
    assert "allow_nan=False" in messages[0]
    assert "sort_keys=True" in messages[1]


def test_hash001_flags_allow_nan_regression_in_store_modules(tmp_path):
    source = (
        "import json\n"
        "def save(p, d):\n"
        "    p.write_text(json.dumps(d, sort_keys=True))\n"
    )
    report = _run(tmp_path, {"repro/sweep/store.py": source}, select=["HASH001"])
    assert _rules_of(report) == ["HASH001"]
    assert "allow_nan=False" in report.findings[0].message
    assert "NaN" in report.findings[0].message


def test_hash001_flags_raw_set_iteration_in_store_modules(tmp_path):
    source = (
        "def tags(cells):\n"
        "    out = []\n"
        "    for tag in {c.tag for c in cells}:\n"
        "        out.append(tag)\n"
        "    return out\n"
    )
    report = _run(tmp_path, {"repro/sweep/q.py": source}, select=["HASH001"])
    assert _rules_of(report) == ["HASH001"]


def test_hash001_accepts_canonical_forms(tmp_path):
    source = (
        "import hashlib, json\n"
        "def address(payload):\n"
        "    blob = json.dumps(payload, sort_keys=True, allow_nan=False)\n"
        "    return hashlib.sha256(blob.encode()).hexdigest()\n"
        "def tags(cells):\n"
        "    return [t for t in sorted({c.tag for c in cells})]\n"
    )
    report = _run(tmp_path, {"repro/sweep/store.py": source}, select=["HASH001"])
    assert report.ok


# -- BANK001 -----------------------------------------------------------------

_BANK_LAYER = (
    "class Blur:\n"
    "    def bank_forward(self, x, params, prefix=''):\n"
    "        return x\n"
)
_ABSTRACT_LAYER = (
    "class Base:\n"
    "    def bank_forward(self, x, params, prefix=''):\n"
    "        \"\"\"Stub.\"\"\"\n"
    "        raise NotImplementedError\n"
)


def _bank_conftest(tmp_path: Path, names) -> Path:
    path = tmp_path / "tests" / "conftest.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    body = ",\n".join(f'    "{name}"' for name in names)
    path.write_text("BANK_EQUIVALENCE_LAYERS = frozenset([\n%s\n])\n" % body)
    return path


def test_bank001_clean_when_declaration_matches(tmp_path):
    conftest = _bank_conftest(tmp_path, ["Blur"])
    report = _run(
        tmp_path,
        {"repro/nn/layers.py": _ABSTRACT_LAYER + _BANK_LAYER},
        select=["BANK001"],
        conftest=conftest,
    )
    assert report.ok  # the abstract stub is exempt, Blur is declared


def test_bank001_flags_undeclared_definer_at_class(tmp_path):
    conftest = _bank_conftest(tmp_path, [])
    report = _run(
        tmp_path,
        {"repro/nn/layers.py": _BANK_LAYER},
        select=["BANK001"],
        conftest=conftest,
    )
    (finding,) = report.findings
    assert "Blur" in finding.message
    assert finding.file.endswith("repro/nn/layers.py")
    assert finding.line == 1


def test_bank001_flags_stale_declaration_at_conftest(tmp_path):
    conftest = _bank_conftest(tmp_path, ["Blur", "Ghost"])
    report = _run(
        tmp_path,
        {"repro/nn/layers.py": _BANK_LAYER},
        select=["BANK001"],
        conftest=conftest,
    )
    (finding,) = report.findings
    assert "Ghost" in finding.message
    assert finding.file == str(conftest)


def test_bank001_catches_layer_dropped_from_real_matrix(tmp_path):
    """Acceptance check: removing a declared layer fails the real-tree lint."""
    pruned = sorted(BANK_EQUIVALENCE_LAYERS - {"Tanh"})
    conftest = _bank_conftest(tmp_path, pruned)
    report = run_analysis([SRC_ROOT / "repro"], select=["BANK001"], conftest=conftest)
    assert not report.ok
    assert any("Tanh" in f.message for f in report.findings)


# -- OBS001 ------------------------------------------------------------------

_OBS_EVENTS = 'EVENT_NAMES = frozenset({\n    "round",\n    "eval",\n})\n'


def test_obs001_clean_when_names_are_registered(tmp_path):
    report = _run(
        tmp_path,
        {
            "repro/obs/events.py": _OBS_EVENTS,
            "repro/core/t.py": (
                "from repro.obs.tracer import span, instant\n"
                "def f(clock):\n"
                "    with span('round', clock=clock, round=1):\n"
                "        instant('eval')\n"
            ),
        },
        select=["OBS001"],
    )
    assert report.ok


def test_obs001_flags_unregistered_literal_name(tmp_path):
    report = _run(
        tmp_path,
        {
            "repro/obs/events.py": _OBS_EVENTS,
            "repro/core/t.py": (
                "from repro.obs.tracer import instant\n"
                "instant('bogus_event')\n"
            ),
        },
        select=["OBS001"],
    )
    (finding,) = report.findings
    assert "bogus_event" in finding.message and finding.line == 2


def test_obs001_flags_computed_name_through_imported_helper(tmp_path):
    report = _run(
        tmp_path,
        {
            "repro/obs/events.py": _OBS_EVENTS,
            "repro/core/t.py": (
                "from repro.obs.tracer import span as sp\n"
                "def f(name):\n"
                "    return sp(name)\n"
            ),
        },
        select=["OBS001"],
    )
    (finding,) = report.findings
    assert "string literal" in finding.message


def test_obs001_checks_method_calls_but_not_argless_span(tmp_path):
    report = _run(
        tmp_path,
        {
            "repro/obs/events.py": _OBS_EVENTS,
            "repro/core/t.py": (
                "def f(tracer, match):\n"
                "    tracer.span('mystery')\n"
                "    return match.span(0)\n"   # re.Match.span: not an event
            ),
        },
        select=["OBS001"],
    )
    (finding,) = report.findings
    assert "mystery" in finding.message


def test_obs001_exempts_the_obs_package_itself(tmp_path):
    report = _run(
        tmp_path,
        {
            "repro/obs/events.py": _OBS_EVENTS,
            "repro/obs/tracer.py": (
                "def span(name):\n"
                "    return name\n"
                "def forward(self, name):\n"
                "    return self.span(name)\n"
            ),
        },
        select=["OBS001"],
    )
    assert report.ok


def test_obs001_flags_missing_registry_declaration(tmp_path):
    report = _run(
        tmp_path,
        {
            "repro/core/t.py": (
                "from repro.obs.tracer import instant\n"
                "instant('round')\n"
            ),
        },
        select=["OBS001"],
    )
    (finding,) = report.findings
    assert "EVENT_NAMES" in finding.message


def test_obs001_catches_name_dropped_from_real_registry(tmp_path):
    """Acceptance check: dropping "round" from the registry fails the real
    emission sites (copied verbatim into a fixture tree — the analysis is
    purely syntactic, so their imports never run)."""
    events_py = (SRC_ROOT / "repro" / "obs" / "events.py").read_text()
    pruned = events_py.replace('    "round",\n', "")
    assert pruned != events_py
    report = _run(
        tmp_path,
        {
            "repro/obs/events.py": pruned,
            "repro/core/trainer.py": (SRC_ROOT / "repro" / "core" / "trainer.py").read_text(),
        },
        select=["OBS001"],
    )
    assert not report.ok
    assert all("'round'" in f.message for f in report.findings)


# -- API001 ------------------------------------------------------------------


def test_api001_flags_duplicate_registration_across_files(tmp_path):
    report = _run(
        tmp_path,
        {
            "repro/models/a.py": 'MODELS.register("mlp", build_a)\n',
            "repro/models/b.py": 'MODELS.register("mlp", build_b)\n',
        },
        select=["API001"],
    )
    (finding,) = report.findings
    assert "duplicate registration" in finding.message
    assert "a.py:1" in finding.message  # points back at the first site
    assert finding.file.endswith("b.py")


def test_api001_allows_explicit_overwrite(tmp_path):
    report = _run(
        tmp_path,
        {
            "repro/models/a.py": 'MODELS.register("mlp", build_a)\n',
            "repro/models/b.py": 'MODELS.register("mlp", build_b, overwrite=True)\n',
        },
        select=["API001"],
    )
    assert report.ok


def test_api001_flags_stale_and_duplicate_all_entries(tmp_path):
    source = 'def f():\n    pass\n__all__ = ["f", "f", "ghost"]\n'
    report = _run(tmp_path, {"repro/x.py": source}, select=["API001"])
    messages = sorted(f.message for f in report.findings)
    assert len(messages) == 2
    assert "more than once" in messages[0]
    assert "ghost" in messages[1]


def test_api001_lazy_getattr_module_is_exempt_from_existence(tmp_path):
    source = (
        "def __getattr__(name):\n"
        "    raise AttributeError(name)\n"
        '__all__ = ["Lazy", "Lazy"]\n'
    )
    report = _run(tmp_path, {"repro/x.py": source}, select=["API001"])
    # existence of "Lazy" is unknowable, but the duplicate still counts
    assert len(report.findings) == 1
    assert "more than once" in report.findings[0].message


# -- PY001 / PY002 -----------------------------------------------------------


def test_py001_flags_mutable_defaults(tmp_path):
    source = (
        "def f(history=[]):\n"
        "    return history\n"
        "def g(*, cache=dict()):\n"
        "    return cache\n"
        "def h(items=None, scale=1.0):\n"
        "    return items\n"
    )
    report = _run(tmp_path, {"repro/x.py": source}, select=["PY001"])
    assert sorted(_rules_of(report)) == ["PY001", "PY001"]


def test_py002_flags_bare_except(tmp_path):
    source = (
        "try:\n    x = 1\nexcept:\n    pass\n"
        "try:\n    y = 2\nexcept ValueError:\n    pass\n"
    )
    report = _run(tmp_path, {"repro/x.py": source}, select=["PY002"])
    assert _rules_of(report) == ["PY002"]
    assert report.findings[0].line == 3


# -- suppressions ------------------------------------------------------------


def test_suppression_comment_silences_named_rule(tmp_path):
    source = "import numpy as np\nrng = np.random.default_rng()  # repro: ignore[DET001] fixture\n"
    report = _run(tmp_path, {"repro/x.py": source}, select=["DET001"])
    assert report.ok
    assert report.suppressed == 1


def test_suppression_of_other_rule_does_not_silence(tmp_path):
    source = "import numpy as np\nrng = np.random.default_rng()  # repro: ignore[PY001]\n"
    report = _run(tmp_path, {"repro/x.py": source}, select=["DET001"])
    assert _rules_of(report) == ["DET001"]
    assert report.suppressed == 0


def test_bare_suppression_silences_every_rule_on_line(tmp_path):
    source = "import numpy as np\nrng = np.random.default_rng()  # repro: ignore\n"
    report = _run(tmp_path, {"repro/x.py": source}, select=["DET001"])
    assert report.ok
    assert report.suppressed == 1


def test_suppressions_for_line_grammar():
    assert suppressions_for_line("x = 1") == set()
    assert suppressions_for_line("x = 1  # repro: ignore") == {"*"}
    assert suppressions_for_line("x = 1  # repro: ignore[DET001]") == {"DET001"}
    assert suppressions_for_line("x = 1  # repro: ignore[DET001, PY002] why") == {
        "DET001",
        "PY002",
    }


# -- engine / selection / errors --------------------------------------------


def test_syntax_error_becomes_e999_finding(tmp_path):
    report = _run(tmp_path, {"repro/x.py": "def broken(:\n"}, select=["PY002"])
    assert _rules_of(report) == ["E999"]


def test_unknown_rule_raises(tmp_path):
    with pytest.raises(ValueError, match="NOPE001"):
        _run(tmp_path, {"repro/x.py": "x = 1\n"}, select=["NOPE001"])


def test_select_and_ignore_control_rules_run(tmp_path):
    files = {"repro/x.py": "import numpy as np\nv = np.random.rand(3)\n"}
    selected = _run(tmp_path, dict(files), select=["DET001", "PY002"])
    assert selected.rules_run == ["DET001", "PY002"]
    ignored = _run(tmp_path, dict(files), ignore=["DET001"])
    assert "DET001" not in ignored.rules_run
    assert ignored.ok


def test_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        run_analysis([tmp_path / "nope"])


def test_findings_sorted_and_deduped_scan(tmp_path):
    files = {
        "repro/b.py": "import numpy as np\nv = np.random.rand(3)\nw = np.random.rand(3)\n",
        "repro/a.py": "import numpy as np\nv = np.random.rand(3)\n",
    }
    root = _write_tree(tmp_path / "tree", files)
    # the same file reached through two roots is scanned once
    report = run_analysis([root, root / "repro" / "a.py"], select=["DET001"])
    assert report.files_scanned == 2
    assert [Path(f.file).name for f in report.findings] == ["a.py", "b.py", "b.py"]


# -- CLI ---------------------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    bad = _write_tree(tmp_path / "tree", {"repro/x.py": "import random\nrandom.random()\n"})
    clean = _write_tree(tmp_path / "clean", {"repro/y.py": "x = 1\n"})
    assert cli_main([str(clean), "--rules", "DET001"]) == 0
    assert cli_main([str(bad), "--rules", "DET001"]) == 1
    assert cli_main([str(tmp_path / "missing")]) == 2
    assert cli_main([str(clean), "--rules", "NOPE001"]) == 2
    capsys.readouterr()


def test_cli_text_output_is_clickable(tmp_path, capsys):
    bad = _write_tree(tmp_path / "tree", {"repro/x.py": "import random\nrandom.random()\n"})
    assert cli_main([str(bad), "--rules", "DET001"]) == 1
    out = capsys.readouterr().out
    assert "repro/x.py:2:" in out
    assert "DET001" in out
    assert "1 finding(s)" in out


def test_cli_json_schema(tmp_path, capsys):
    bad = _write_tree(tmp_path / "tree", {"repro/x.py": "import random\nrandom.random()\n"})
    assert cli_main([str(bad), "--rules", "DET001", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["files_scanned"] == 1
    assert payload["suppressed"] == 0
    assert payload["rules"] == ["DET001"]
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "message", "file", "line", "col"}
    assert finding["line"] == 2


def test_cli_list_rules_matches_registry(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert out.strip() == rules_table_markdown().strip()
    for rule_id in RULES.names():
        assert f"`{rule_id}`" in out


def test_readme_rule_table_is_generated_output():
    """The README's rule table is ``--list-rules`` verbatim — no drift."""
    readme = (REPO_ROOT / "README.md").read_text()
    assert rules_table_markdown() in readme


# -- the shipped tree --------------------------------------------------------


def test_shipped_tree_lints_clean():
    """`python -m repro.analysis src/` must exit 0 on the repo itself."""
    report = run_analysis([SRC_ROOT / "repro"], conftest=CONFTEST)
    assert report.findings == [], "\n".join(f.render() for f in report.findings)
    assert report.files_scanned > 50


def test_shipped_tree_lints_clean_via_cli():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC_ROOT)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_bank_declaration_matches_runtime_matrix():
    """BANK_EQUIVALENCE_LAYERS == layers the equivalence cases instantiate.

    The static side (BANK001) pins declaration == definers; this pins
    declaration == exercised, so a bank-capable layer cannot silently
    drop out of the matrix while staying declared.
    """
    from repro.nn.layers import Module

    def walk(module):
        yield module
        for child in module._modules.values():
            yield from walk(child)

    observed = set()
    for case in equivalence_cases():
        model = case.model_fn()
        for mod in walk(model):
            for klass in type(mod).__mro__:
                if klass is Module or not klass.__module__.startswith("repro."):
                    continue
                if "bank_forward" in vars(klass):
                    observed.add(klass.__name__)
    assert observed == BANK_EQUIVALENCE_LAYERS


# -- ruff (satellite lint gate) ---------------------------------------------


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "."], cwd=REPO_ROOT, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
