"""Tests for ``repro.sweep``: specs, the content-addressed store, the runner.

The determinism contract is the load-bearing part: the same ``SweepSpec``
must expand to identical cell hashes and *byte-identical* stored metrics on
every run, completed cells must be skipped (zero re-execution), and a
partially-populated store must resume exactly the missing cells.
"""

from __future__ import annotations

import json

import pytest

from repro.api import SWEEPS, Experiment
from repro.experiments.configs import make_config
from repro.experiments.figures import sweep_error_runtime_frontier, sweep_loss_curves
from repro.experiments.tables import sweep_summary_table
from repro.sweep import (
    ResultStore,
    SweepRunner,
    SweepSpec,
    cell_hash,
    grid,
    paired,
    run_sweep,
)


def tiny_spec(name="tiny", seed_mode="shared", **base_overrides) -> SweepSpec:
    """A fast 2x2 spec on a shrunken smoke config (runs in well under 1 s)."""
    base = make_config(
        "smoke", n_train=120, n_test=40, wall_time_budget=12.0, **base_overrides
    )
    return SweepSpec(name, base, grid(tau=[1, 4], seed=[7, 8]), seed_mode=seed_mode)


class TestGridAndSpec:
    def test_grid_preserves_order_and_rejects_empty_axes(self):
        axes = grid(tau=[1, 4], seed=range(2))
        assert list(axes) == ["tau", "seed"]
        assert axes["seed"] == [0, 1]
        with pytest.raises(ValueError, match="no values"):
            grid(tau=[])

    def test_cells_cross_product_last_axis_fastest(self):
        spec = tiny_spec()
        cells = spec.cells()
        assert spec.n_cells == len(cells) == 4
        assert [c.overrides for c in cells] == [
            {"tau": 1, "seed": 7},
            {"tau": 1, "seed": 8},
            {"tau": 4, "seed": 7},
            {"tau": 4, "seed": 8},
        ]

    def test_axis_aliases_resolve_to_config_fields(self):
        base = make_config("smoke")
        spec = SweepSpec(
            "alias", base, grid(m=[2], tau=[4], lr=[0.1])
        )
        (cell,) = spec.cells()
        assert cell.config.n_workers == 2
        assert cell.config.methods == ("pasgd-tau4",)
        assert cell.config.lr == 0.1

    def test_tau_one_is_sync_sgd(self):
        spec = SweepSpec("t", make_config("smoke"), grid(tau=[1]))
        assert spec.cells()[0].config.methods == ("sync-sgd",)

    def test_method_axis(self):
        spec = SweepSpec("m", make_config("smoke"), grid(method=["adacomm"]))
        assert spec.cells()[0].config.methods == ("adacomm",)

    def test_conflicting_axes_rejected(self):
        with pytest.raises(ValueError, match="both set"):
            SweepSpec("c", make_config("smoke"), {"tau": [1], "method": ["adacomm"]})
        with pytest.raises(ValueError, match="both set"):
            SweepSpec("c", make_config("smoke"), {"m": [2], "n_workers": [4]})

    def test_invalid_axis_value_fails_at_expansion(self):
        spec = SweepSpec("bad", make_config("smoke"), {"model": ["not_a_model"]})
        with pytest.raises(ValueError, match="unknown model"):
            spec.cells()

    def test_unknown_axis_field_rejected(self):
        spec = SweepSpec("bad", make_config("smoke"), {"not_a_field": [1]})
        with pytest.raises(TypeError):
            spec.cells()

    def test_spec_requires_axes_and_valid_seed_mode(self):
        with pytest.raises(ValueError, match="at least one axis"):
            SweepSpec("x", make_config("smoke"), {})
        with pytest.raises(ValueError, match="seed_mode"):
            SweepSpec("x", make_config("smoke"), grid(tau=[1]), seed_mode="nope")

    def test_spec_round_trips_through_json(self):
        spec = tiny_spec()
        clone = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert [c.address for c in clone.cells()] == [c.address for c in spec.cells()]
        assert clone.seed_mode == spec.seed_mode


class TestCellHashing:
    def test_hash_ignores_cosmetic_name(self):
        a = make_config("smoke").with_overrides(name="first")
        b = make_config("smoke").with_overrides(name="second")
        assert cell_hash(a) == cell_hash(b)

    def test_hash_distinguishes_physics(self):
        base = make_config("smoke")
        assert cell_hash(base) != cell_hash(base.with_overrides(lr=base.lr * 2))

    def test_same_spec_expands_to_identical_hashes(self):
        first = [c.address for c in tiny_spec().cells()]
        second = [c.address for c in tiny_spec().cells()]
        assert first == second
        assert len(set(first)) == 4

    def test_renamed_campaign_keeps_addresses(self):
        a = [c.address for c in tiny_spec(name="alpha").cells()]
        b = [c.address for c in tiny_spec(name="beta").cells()]
        assert a == b

    def test_shared_seed_mode_uses_config_seed(self):
        for cell in tiny_spec(seed_mode="shared").cells():
            assert cell.run_seed == cell.config.seed

    def test_decorrelated_seed_mode_derives_from_hash(self):
        cells = tiny_spec(seed_mode="decorrelated").cells()
        seeds = [c.run_seed for c in cells]
        assert len(set(seeds)) == len(seeds)  # all distinct
        for cell in cells:
            # The derived seed is folded back into the executed config, so
            # the content address always hashes exactly what runs.
            assert cell.config.seed == cell.run_seed
            assert cell.address == cell_hash(cell.config)
        again = tiny_spec(seed_mode="decorrelated").cells()
        assert [c.run_seed for c in again] == seeds
        assert [c.address for c in again] == [c.address for c in cells]

    def test_seed_modes_never_collide_in_the_store(self, tmp_path):
        """Shared- and decorrelated-mode cells of one spec have disjoint
        addresses, so a store populated by one mode can never serve
        wrong-seed results to the other as cache hits."""
        shared = tiny_spec(seed_mode="shared")
        decorrelated = tiny_spec(seed_mode="decorrelated")
        shared_addresses = {c.address for c in shared.cells()}
        decorrelated_addresses = {c.address for c in decorrelated.cells()}
        assert not shared_addresses & decorrelated_addresses
        run_sweep(shared, tmp_path)
        report = run_sweep(decorrelated, tmp_path)
        assert len(report.executed) == 4 and not report.cached


class TestResultStore:
    def test_missing_cell_raises_keyerror(self, tmp_path):
        store = ResultStore(tmp_path)
        assert "deadbeef" not in store
        with pytest.raises(KeyError):
            store.runs("deadbeef")
        with pytest.raises(KeyError):
            store.meta("deadbeef")

    def test_incomplete_cell_not_counted(self, tmp_path):
        store = ResultStore(tmp_path)
        cell_dir = store.cell_dir("abc123")
        cell_dir.mkdir(parents=True)
        (cell_dir / "cell.json").write_text("{}")
        # No result.json yet: the cell must not be treated as complete.
        assert "abc123" not in store
        assert store.addresses() == []

    def test_manifest_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write_manifest("camp", {"cells": []})
        assert store.campaigns() == ["camp"]
        assert store.manifest("camp") == {"cells": []}
        with pytest.raises(KeyError):
            store.manifest("other")


class TestRunnerDeterminismAndResume:
    def test_two_runs_byte_identical_stores(self, tmp_path):
        spec = tiny_spec()
        report_a = run_sweep(spec, tmp_path / "a")
        report_b = run_sweep(tiny_spec(), tmp_path / "b")
        assert sorted(report_a.executed) == sorted(report_b.executed)
        for cell in spec.cells():
            for fname in ("cell.json", "result.json"):
                bytes_a = (report_a.store.cell_dir(cell.address) / fname).read_bytes()
                bytes_b = (report_b.store.cell_dir(cell.address) / fname).read_bytes()
                assert bytes_a == bytes_b, f"{fname} differs for {cell.label}"

    def test_second_run_is_all_cache_hits(self, tmp_path):
        spec = tiny_spec()
        first = run_sweep(spec, tmp_path)
        assert len(first.executed) == 4 and not first.cached
        second = run_sweep(tiny_spec(), tmp_path)
        assert not second.executed
        assert len(second.cached) == 4
        assert second.ok

    def test_partial_store_resumes_only_missing_cells(self, tmp_path):
        spec = tiny_spec()
        report = run_sweep(spec, tmp_path)
        victim = report.executed[2]
        before = (report.store.cell_dir(victim) / "result.json").read_bytes()
        (report.store.cell_dir(victim) / "result.json").unlink()

        resumed = run_sweep(tiny_spec(), tmp_path)
        assert resumed.executed == [victim]
        assert len(resumed.cached) == 3
        after = (report.store.cell_dir(victim) / "result.json").read_bytes()
        assert after == before  # the re-executed cell reproduces its bytes

    def test_parallel_matches_serial_bytes(self, tmp_path):
        spec = tiny_spec()
        serial = run_sweep(spec, tmp_path / "serial")
        # fork keeps this test fast; the CLI/CI exercise the spawn default.
        parallel = SweepRunner(tmp_path / "par", jobs=2, mp_context="fork").run(
            tiny_spec()
        )
        assert sorted(parallel.executed) == sorted(serial.executed)
        for address in serial.executed:
            assert (
                (serial.store.cell_dir(address) / "result.json").read_bytes()
                == (parallel.store.cell_dir(address) / "result.json").read_bytes()
            )

    def test_duplicate_cells_collapse(self, tmp_path):
        # Two axis values expanding to identical configs -> one stored cell.
        spec = SweepSpec(
            "dup",
            make_config("smoke", n_train=120, n_test=40, wall_time_budget=8.0),
            {"method": ["sync-sgd", "sync-sgd"]},
        )
        cells = spec.cells()
        assert len(cells) == 2
        assert cells[0].address == cells[1].address
        report = run_sweep(spec, tmp_path)
        assert len(report.executed) == 1
        assert report.total == 2

    def test_failed_cell_reported_not_raised(self, tmp_path):
        spec = SweepSpec(
            "boom",
            make_config("smoke", n_train=120, n_test=40, wall_time_budget=8.0),
            {"method": ["fixed:tau=0", "sync-sgd"]},
        )
        report = run_sweep(spec, tmp_path)
        assert not report.ok
        assert len(report.failed) == 1
        assert len(report.executed) == 1
        (failed_address,) = report.failed
        assert failed_address not in report.store

    def test_results_iterates_stored_trajectories(self, tmp_path):
        report = run_sweep(tiny_spec(), tmp_path)
        results = list(report.results())
        assert len(results) == 4
        for cell in results:
            names = cell.runs.names()
            assert names in (["sync-sgd"], ["pasgd-tau4"])
            assert all(rec.points for rec in cell.runs)

    def test_runner_rejects_bad_jobs(self, tmp_path):
        with pytest.raises(ValueError, match="jobs"):
            SweepRunner(tmp_path, jobs=0)


class TestNamedCampaignsAndExperimentSweep:
    def test_registered_campaigns_expand(self):
        for name in ("tau_error_runtime", "variable_vs_fixed_tau", "worker_scaling",
                     "smoke_2x2"):
            spec = SWEEPS.build(name)
            assert spec.n_cells >= 4
            assert len({c.address for c in spec.cells()}) == spec.n_cells

    def test_sweeps_listed_in_api_registries(self):
        from repro.api import all_registries

        assert "smoke_2x2" in all_registries()["sweeps"].names()

    def test_experiment_sweep_runs_and_resumes(self, tmp_path):
        exp = Experiment("smoke").set(n_train=120, n_test=40, wall_time_budget=10.0)
        report = exp.sweep(tau=[1, 4], store=str(tmp_path), name="fluent")
        assert report.sweep == "fluent"
        assert len(report.executed) == 2
        again = exp.sweep(tau=[1, 4], store=str(tmp_path), name="fluent")
        assert not again.executed and len(again.cached) == 2


class TestRenderingFromStore:
    @pytest.fixture()
    def populated(self, tmp_path):
        report = run_sweep(tiny_spec(), tmp_path)
        addresses = report.executed
        # Render from a *fresh* handle: nothing in memory, only the directory.
        return ResultStore(tmp_path), addresses

    def test_summary_table_from_store_alone(self, populated):
        store, addresses = populated
        rows = sweep_summary_table(store, addresses, target_loss=1.0)
        assert len(rows) == 4
        for cell_label, method, best_loss, best_acc, t_target in rows:
            assert method in ("sync-sgd", "pasgd-tau4")
            assert best_loss > 0 and 0 <= best_acc <= 100

    def test_loss_curves_from_store_alone(self, populated):
        store, addresses = populated
        curves = sweep_loss_curves(store, addresses)
        assert len(curves) == 4
        for label, series in curves.items():
            assert "::" in label and len(series) >= 2

    def test_error_runtime_frontier(self, populated):
        store, addresses = populated
        frontier = sweep_error_runtime_frontier(store, target_loss=1.0, addresses=addresses)
        assert len(frontier) == 4
        for _, t_target, best_loss in frontier:
            assert t_target > 0 and best_loss > 0


class TestSweepCLI:
    def test_list_sweeps(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list", "sweeps"]) == 0
        out = capsys.readouterr().out
        assert "smoke_2x2" in out and "tau_error_runtime" in out

    def test_cli_sweep_runs_then_caches(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["--sweep", "smoke_2x2", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "executed=4 cached=0" in out
        assert "rendered from" in out

        assert main(["--sweep", "smoke_2x2", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "executed=0 cached=4" in out

    def test_cli_unknown_sweep_errors(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="unknown sweep"):
            main(["--sweep", "nope", "--store", str(tmp_path)])

    @pytest.mark.parametrize(
        "extra",
        [["--set", "n_workers=8"], ["--scale", "0.5"], ["--seed", "3"],
         ["--model", "mlp"], ["--backend", "loop"], ["--config", "smoke"]],
        ids=["set", "scale", "seed", "model", "backend", "config"],
    )
    def test_cli_rejects_single_run_flags_with_sweep(self, tmp_path, extra):
        """Flags that would be silently ignored must fail loudly instead."""
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="cannot be combined with --sweep"):
            main(["--sweep", "smoke_2x2", "--store", str(tmp_path), *extra])


class TestNonGridExpansions:
    def test_paired_axes_carry_the_expansion_mode(self):
        # paired(...) alone is enough — no separate flag to forget, so the
        # intent cannot silently degrade into a full cross-product.
        spec = SweepSpec("diag", make_config("smoke"), paired(m=[2, 4], tau=[8, 4]))
        assert spec.expansion == "paired"
        cells = spec.cells()
        assert spec.n_cells == len(cells) == 2
        assert [c.overrides for c in cells] == [{"m": 2, "tau": 8}, {"m": 4, "tau": 4}]
        assert cells[0].config.n_workers == 2
        assert cells[0].config.methods == ("pasgd-tau8",)
        assert cells[1].config.n_workers == 4

    def test_plain_dict_axes_with_explicit_flag(self):
        spec = SweepSpec(
            "diag", make_config("smoke"), grid(m=[2, 4], tau=[8, 4]),
            expansion="paired",
        )
        assert spec.n_cells == 2

    def test_paired_requires_equal_lengths(self):
        with pytest.raises(ValueError, match="equal lengths"):
            paired(m=[2, 4], tau=[8])
        with pytest.raises(ValueError, match="equal lengths"):
            SweepSpec("bad", make_config("smoke"), grid(m=[2, 4], tau=[8]),
                      expansion="paired")
        with pytest.raises(ValueError, match="expansion"):
            SweepSpec("bad", make_config("smoke"), grid(tau=[1]), expansion="spiral")

    def test_random_sampling_is_a_deterministic_subset(self):
        full = tiny_spec()
        sampled = full.random(3, seed=11)
        cells = sampled.cells()
        assert sampled.n_cells == len(cells) == 3
        assert [c.address for c in cells] == [c.address for c in sampled.cells()]
        full_addresses = {c.address for c in full.cells()}
        assert {c.address for c in cells} <= full_addresses
        # Enumeration keeps the underlying grid order; indices are sequential.
        assert [c.index for c in cells] == [0, 1, 2]
        other = full.random(3, seed=12).cells()
        assert [c.address for c in other] != [c.address for c in cells]

    def test_random_larger_than_grid_keeps_every_cell(self):
        spec = tiny_spec().random(99, seed=0)
        assert spec.n_cells == 4
        assert len(spec.cells()) == 4

    def test_random_validates_n(self):
        with pytest.raises(ValueError, match=">= 1"):
            tiny_spec().random(0)

    def test_expansion_and_sampling_round_trip_through_json(self):
        sampled = tiny_spec().random(2, seed=5)
        clone = SweepSpec.from_dict(json.loads(json.dumps(sampled.to_dict())))
        assert [c.address for c in clone.cells()] == [c.address for c in sampled.cells()]
        diag = SweepSpec("diag", make_config("smoke"), paired(m=[2, 4], tau=[8, 4]))
        clone = SweepSpec.from_dict(json.loads(json.dumps(diag.to_dict())))
        assert clone.expansion == "paired"
        assert [c.address for c in clone.cells()] == [c.address for c in diag.cells()]

    def test_sampled_campaign_runs_and_resumes_from_store(self, tmp_path):
        sampled = tiny_spec().random(2, seed=3)
        report = run_sweep(sampled, tmp_path)
        assert len(report.executed) == 2
        again = run_sweep(tiny_spec().random(2, seed=3), tmp_path)
        assert not again.executed and len(again.cached) == 2
        # The sample is a sub-campaign of the full grid: running the full
        # grid afterwards re-uses the sampled cells as cache hits.
        full = run_sweep(tiny_spec(), tmp_path)
        assert len(full.cached) == 2 and len(full.executed) == 2


class TestStoreMergeAndGC:
    def _populated(self, tmp_path, name):
        store_dir = tmp_path / name
        report = run_sweep(tiny_spec(), store_dir)
        return ResultStore(store_dir), report

    def test_merge_unions_cells_and_manifests_byte_identically(self, tmp_path):
        src, report = self._populated(tmp_path, "src")
        dst = ResultStore(tmp_path / "dst")
        merged = dst.merge_from(src)
        assert merged.ok
        assert sorted(merged.copied) == sorted(report.executed)
        assert merged.manifests_copied == ["tiny"]
        for address in report.executed:
            assert (
                (dst.cell_dir(address) / "result.json").read_bytes()
                == (src.cell_dir(address) / "result.json").read_bytes()
            )
        # Re-merging is a no-op: everything already identical.
        again = dst.merge_from(src)
        assert again.ok and not again.copied
        assert sorted(again.identical) == sorted(report.executed)
        # The merged store serves the campaign as pure cache hits.
        rerun = run_sweep(tiny_spec(), dst.root)
        assert not rerun.executed and len(rerun.cached) == 4

    def test_merge_dry_run_writes_nothing(self, tmp_path):
        src, report = self._populated(tmp_path, "src")
        dst = ResultStore(tmp_path / "dst")
        merged = dst.merge_from(src, dry_run=True)
        assert sorted(merged.copied) == sorted(report.executed)
        assert len(dst) == 0 and dst.campaigns() == []

    def test_merge_refuses_on_differing_bytes(self, tmp_path):
        src, report = self._populated(tmp_path, "src")
        dst, _ = self._populated(tmp_path, "dst")
        victim = report.executed[0]
        original = (dst.cell_dir(victim) / "result.json").read_text()
        (src.cell_dir(victim) / "result.json").write_text('{"corrupt": true}\n')
        merged = dst.merge_from(src)
        assert not merged.ok
        assert merged.conflicts == [victim]
        assert len(merged.identical) == 3
        # The conflicting cell was left untouched in the destination.
        assert (dst.cell_dir(victim) / "result.json").read_text() == original

    def test_refused_merge_writes_nothing_at_all(self, tmp_path):
        # All-or-nothing: even cells that *could* be copied cleanly are not
        # written when any address conflicts elsewhere in the source.
        src, report = self._populated(tmp_path, "src")
        dst, _ = self._populated(tmp_path, "dst")
        missing, conflicting = report.executed[0], report.executed[1]
        import shutil

        shutil.rmtree(dst.cell_dir(missing))
        (src.cell_dir(conflicting) / "result.json").write_text('{"corrupt": true}\n')
        (dst.root / "sweeps" / "tiny.json").unlink()
        merged = dst.merge_from(src)
        assert not merged.ok
        assert merged.copied == [missing]
        assert merged.manifests_copied == ["tiny"]
        # ...but the refused merge wrote none of them.
        assert missing not in dst
        assert "tiny" not in dst.campaigns()

    def test_merge_refuses_on_manifest_conflict(self, tmp_path):
        src, _ = self._populated(tmp_path, "src")
        dst, _ = self._populated(tmp_path, "dst")
        dst.write_manifest("tiny", {"name": "tiny", "cells": []})
        merged = dst.merge_from(src)
        assert merged.manifest_conflicts == ["tiny"]
        assert not merged.ok

    def test_gc_prunes_only_unreferenced_cells(self, tmp_path):
        store, report = self._populated(tmp_path, "store")
        keep = set(report.executed[:2])
        manifest = store.manifest("tiny")
        manifest["cells"] = [c for c in manifest["cells"] if c["address"] in keep]
        store.write_manifest("tiny", manifest)

        orphans = store.gc(dry_run=True)
        assert sorted(orphans) == sorted(set(report.executed) - keep)
        assert len(store) == 4  # dry run removed nothing

        removed = store.gc()
        assert sorted(removed) == sorted(orphans)
        assert sorted(store.addresses()) == sorted(keep)

    def test_gc_prunes_incomplete_orphans_too(self, tmp_path):
        store, _ = self._populated(tmp_path, "store")
        half_cell = store.cell_dir("feedface00000000")
        half_cell.mkdir(parents=True)
        (half_cell / "cell.json").write_text("{}")
        removed = store.gc()
        assert removed == ["feedface00000000"]
        assert len(store) == 4

    def test_gc_on_empty_store(self, tmp_path):
        assert ResultStore(tmp_path / "empty").gc() == []

    def test_interrupted_campaign_survives_gc(self, tmp_path):
        # The runner records the manifest before executing any cell, so a
        # killed campaign's completed cells stay referenced and gc-safe.
        class Interrupt(RuntimeError):
            pass

        executed = []

        def progress(line):
            if line.startswith("[sweep] executed "):
                executed.append(line)
                if len(executed) == 2:
                    raise Interrupt(line)

        store = ResultStore(tmp_path)
        with pytest.raises(Interrupt):
            SweepRunner(store, progress=progress).run(tiny_spec())
        assert 0 < len(store) < 4  # genuinely interrupted mid-campaign
        assert store.campaigns() == ["tiny"]
        assert store.gc() == []  # nothing orphaned
        completed_before_resume = len(store)
        resumed = run_sweep(tiny_spec(), tmp_path)
        assert resumed.ok
        assert len(resumed.cached) == completed_before_resume
        assert len(resumed.executed) == 4 - completed_before_resume


class TestHashExcludesProcessLayout:
    def test_layout_fields_do_not_change_addresses(self):
        base = make_config("smoke")
        assert cell_hash(base) == cell_hash(
            base.with_overrides(backend_shards=8, auto_shard_threshold=2)
        )
        # Physics fields still change the address.
        assert cell_hash(base) != cell_hash(base.with_overrides(lr=0.123))

    def test_sweeps_differing_only_in_layout_share_cells(self, tmp_path):
        store_dir = tmp_path / "store"
        first = run_sweep(tiny_spec(), store_dir)
        assert len(first.executed) == 4
        # Same campaign re-run under a different process layout: pure cache hits.
        relaid = tiny_spec(backend_shards=4, auto_shard_threshold=2)
        second = run_sweep(relaid, store_dir)
        assert second.executed == [] and len(second.cached) == 4


class TestStoreQuery:
    def _populated(self, tmp_path):
        store_dir = tmp_path / "store"
        run_sweep(tiny_spec(), store_dir)
        return ResultStore(store_dir)

    def test_exact_match_filters_by_recorded_overrides(self, tmp_path):
        store = self._populated(tmp_path)
        hits = store.query({"tau": 4})
        assert len(hits) == 2
        assert all(hit.overrides["tau"] == 4 for hit in hits)
        assert sorted(hit.overrides["seed"] for hit in hits) == [7, 8]
        assert all(hit.completed and hit.campaign == "tiny" for hit in hits)
        # Conjunction of keys narrows to a single cell.
        (hit,) = store.query({"tau": 4, "seed": 7})
        assert hit.overrides == {"tau": 4, "seed": 7}
        assert hit.address in store

    def test_missing_key_and_value_type_mismatches_never_match(self, tmp_path):
        store = self._populated(tmp_path)
        # No cell ever set an "m" axis, so querying it matches nothing.
        assert store.query({"m": 2}) == []
        # Exact equality, not string coercion: "4" != 4.
        assert store.query({"tau": "4"}) == []
        assert store.query({"tau": 99}) == []

    def test_tuple_values_match_their_json_list_form(self, tmp_path):
        # Manifests store overrides as JSON, so a tuple-valued axis is
        # recorded as a list; the query must match the config-side tuple.
        store_dir = tmp_path / "store"
        base = make_config("smoke", n_train=120, n_test=40, wall_time_budget=8.0)
        spec = SweepSpec(
            "tuples", base, grid(hidden_sizes=[(16,), (16, 8)], tau=[1])
        )
        run_sweep(spec, store_dir)
        store = ResultStore(store_dir)
        hits = store.query({"hidden_sizes": (16,)})
        assert len(hits) == 1 and hits[0].overrides["hidden_sizes"] == [16]
        assert len(store.query({"hidden_sizes": [16, 8]})) == 1

    def test_empty_where_lists_everything_and_flags_pending(self, tmp_path):
        store = self._populated(tmp_path)
        hits = store.query()
        assert len(hits) == 4 and all(hit.completed for hit in hits)
        # Drop one result file: the manifest still lists the cell, but it
        # now reports as pending (what is left to run).
        victim = hits[0].address
        (store.cell_dir(victim) / "result.json").unlink()
        refreshed = {hit.address: hit.completed for hit in store.query()}
        assert refreshed[victim] is False
        assert sum(refreshed.values()) == 3

    def test_campaign_restriction_and_unknown_campaign(self, tmp_path):
        store = self._populated(tmp_path)
        assert len(store.query(campaign="tiny")) == 4
        with pytest.raises(KeyError, match="no manifest"):
            store.query(campaign="nope")

    def test_query_verb_cli(self, tmp_path, capsys):
        from repro.sweep.__main__ import main

        store_dir = tmp_path / "store"
        run_sweep(tiny_spec(), store_dir)
        assert main(["query", str(store_dir), "--where", "tau=4"]) == 0
        out = capsys.readouterr().out
        assert "2 cell(s) match tau=4" in out and "done" in out
        assert main(["query", str(store_dir), "--where", "tau=4",
                     "--where", "seed=7"]) == 0
        assert "1 cell(s) match" in capsys.readouterr().out
        assert main(["query", str(store_dir), "--where", "m=2"]) == 0
        assert "0 cell(s) match" in capsys.readouterr().out
        assert main(["query", str(store_dir), "--campaign", "nope"]) == 1
        assert "no manifest" in capsys.readouterr().err


class TestSweepMaintenanceCLI:
    def test_merge_verb(self, tmp_path, capsys):
        from repro.sweep.__main__ import main

        run_sweep(tiny_spec(), tmp_path / "src")
        assert main(["merge", str(tmp_path / "src"), str(tmp_path / "dst")]) == 0
        out = capsys.readouterr().out
        assert "copied=4" in out and "conflicts=0" in out
        assert len(ResultStore(tmp_path / "dst")) == 4

    def test_merge_verb_refuses_conflicts(self, tmp_path, capsys):
        from repro.sweep.__main__ import main

        report = run_sweep(tiny_spec(), tmp_path / "src")
        run_sweep(tiny_spec(), tmp_path / "dst")
        victim = report.executed[0]
        (ResultStore(tmp_path / "src").cell_dir(victim) / "result.json").write_text("{}\n")
        assert main(["merge", str(tmp_path / "src"), str(tmp_path / "dst")]) == 1
        captured = capsys.readouterr()
        assert "CONFLICT" in captured.out
        assert "refusing merge" in captured.err

    def test_gc_verb_dry_run_then_delete(self, tmp_path, capsys):
        from repro.sweep.__main__ import main

        store_dir = tmp_path / "store"
        store = ResultStore(store_dir)
        run_sweep(tiny_spec(), store_dir)
        (store.root / "sweeps" / "tiny.json").unlink()
        assert main(["gc", str(store_dir), "--dry-run"]) == 0
        assert "would remove" in capsys.readouterr().out
        assert len(store) == 4
        assert main(["gc", str(store_dir)]) == 0
        assert "4 orphan cell(s) removed" in capsys.readouterr().out
        assert len(store) == 0

    def test_requires_a_verb(self):
        from repro.sweep.__main__ import main

        with pytest.raises(SystemExit):
            main([])
