"""Tests for the decentralized-averaging topologies and the CLI entry point."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import networkx as nx

from repro.distributed.averaging import average_states
from repro.distributed.topology import (
    TOPOLOGIES,
    complete_mixing_matrix,
    consensus_distance,
    metropolis_hastings_weights,
    mix_states,
    mixing_matrix_for,
    ring_mixing_matrix,
    rounds_to_consensus,
    spectral_gap,
    star_mixing_matrix,
)
from repro.experiments.cli import build_parser, main


class TestMixingMatrices:
    @pytest.mark.parametrize("builder", [complete_mixing_matrix, ring_mixing_matrix, star_mixing_matrix])
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 8])
    def test_doubly_stochastic(self, builder, m):
        W = builder(m)
        assert W.shape == (m, m)
        np.testing.assert_allclose(W.sum(axis=0), np.ones(m), atol=1e-10)
        np.testing.assert_allclose(W.sum(axis=1), np.ones(m), atol=1e-10)
        assert np.all(W >= -1e-12)

    def test_complete_graph_has_unit_spectral_gap(self):
        assert spectral_gap(complete_mixing_matrix(6)) == pytest.approx(1.0, abs=1e-10)

    def test_ring_gap_shrinks_with_size(self):
        assert spectral_gap(ring_mixing_matrix(4)) > spectral_gap(ring_mixing_matrix(16))

    def test_metropolis_hastings_on_random_graph(self):
        graph = nx.erdos_renyi_graph(10, 0.5, seed=0)
        # Ensure connectivity for the test.
        if not nx.is_connected(graph):
            graph = nx.complete_graph(10)
        W = metropolis_hastings_weights(graph)
        np.testing.assert_allclose(W.sum(axis=1), np.ones(10), atol=1e-10)
        assert spectral_gap(W) > 0

    def test_metropolis_hastings_rejects_disconnected(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2, 3])
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        with pytest.raises(ValueError):
            metropolis_hastings_weights(graph)

    def test_invalid_matrix_rejected(self):
        with pytest.raises(ValueError):
            spectral_gap(np.array([[0.5, 0.6], [0.4, 0.5]]))
        with pytest.raises(ValueError):
            spectral_gap(np.array([[1.0, 0.0]]))


class TestGossipAveraging:
    def _states(self, m=6, dim=10, seed=0):
        gen = np.random.default_rng(seed)
        return [gen.normal(size=dim) for _ in range(m)]

    def test_complete_mixing_matches_exact_average(self):
        states = self._states()
        mixed = mix_states(states, complete_mixing_matrix(len(states)), rounds=1)
        exact = average_states(states)
        for s in mixed:
            np.testing.assert_allclose(s, exact, atol=1e-12)

    def test_gossip_preserves_global_mean(self):
        states = self._states()
        W = ring_mixing_matrix(len(states))
        mixed = mix_states(states, W, rounds=5)
        np.testing.assert_allclose(average_states(mixed), average_states(states), atol=1e-10)

    def test_gossip_reduces_consensus_distance(self):
        states = self._states()
        W = ring_mixing_matrix(len(states))
        d0 = consensus_distance(states)
        d5 = consensus_distance(mix_states(states, W, rounds=5))
        d20 = consensus_distance(mix_states(states, W, rounds=20))
        assert d5 < d0 and d20 < d5

    def test_rounds_to_consensus_bound_is_sufficient(self):
        states = self._states(m=8)
        W = ring_mixing_matrix(8)
        rounds = rounds_to_consensus(W, tolerance=1e-3)
        mixed = mix_states(states, W, rounds=rounds)
        assert consensus_distance(mixed) < 1.1e-3 * consensus_distance(states)

    def test_zero_rounds_is_identity(self):
        states = self._states()
        mixed = mix_states(states, ring_mixing_matrix(len(states)), rounds=0)
        for a, b in zip(states, mixed):
            np.testing.assert_allclose(a, b)

    def test_state_count_mismatch(self):
        with pytest.raises(ValueError):
            mix_states(self._states(m=3), ring_mixing_matrix(4))

    def test_rounds_to_consensus_validation(self):
        with pytest.raises(ValueError):
            rounds_to_consensus(ring_mixing_matrix(4), tolerance=2.0)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=2, max_value=10),
    rounds=st.integers(min_value=1, max_value=15),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_gossip_is_mean_preserving_contraction(m, rounds, seed):
    """Any number of ring-gossip rounds preserves the mean and never increases
    the consensus distance."""
    gen = np.random.default_rng(seed)
    states = [gen.normal(size=5) for _ in range(m)]
    W = ring_mixing_matrix(m)
    mixed = mix_states(states, W, rounds=rounds)
    np.testing.assert_allclose(average_states(mixed), average_states(states), atol=1e-9)
    assert consensus_distance(mixed) <= consensus_distance(states) + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    topology=st.sampled_from(TOPOLOGIES),
    m=st.integers(min_value=1, max_value=12),
)
def test_property_every_topology_builds_doubly_stochastic_matrix(topology, m):
    """Every named topology yields a non-negative doubly-stochastic W for
    every cluster size, so gossip always preserves the global mean."""
    W = mixing_matrix_for(topology, m)
    assert W.shape == (m, m)
    assert np.all(W >= -1e-12)
    np.testing.assert_allclose(W.sum(axis=0), np.ones(m), atol=1e-9)
    np.testing.assert_allclose(W.sum(axis=1), np.ones(m), atol=1e-9)
    gap = spectral_gap(W)
    assert 0.0 <= gap <= 1.0 + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=12),
    p=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_metropolis_hastings_on_random_connected_graphs(n, p, seed):
    """MH weights over any connected graph are symmetric doubly-stochastic."""
    graph = nx.erdos_renyi_graph(n, p, seed=seed)
    graph.add_edges_from((i, i + 1) for i in range(n - 1))  # force connectivity
    W = metropolis_hastings_weights(graph)
    np.testing.assert_allclose(W, W.T, atol=1e-12)
    np.testing.assert_allclose(W.sum(axis=1), np.ones(n), atol=1e-9)
    assert np.all(W >= -1e-12)
    assert spectral_gap(W) > 0.0


@settings(max_examples=25, deadline=None)
@given(
    topology=st.sampled_from(["ring", "star", "mh"]),
    m=st.integers(min_value=3, max_value=10),
    rounds=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_contraction_rate_matches_spectral_gap(topology, m, rounds, seed):
    """The consensus deviation contracts at least as fast as |λ2|^rounds —
    the linear-rate guarantee ``spectral_gap`` / ``rounds_to_consensus``
    promise (Frobenius norm of the deviation from the preserved mean)."""
    gen = np.random.default_rng(seed)
    X0 = np.stack([gen.normal(size=6) for _ in range(m)])
    W = mixing_matrix_for(topology, m)
    Xr = np.stack(mix_states(list(X0), W, rounds=rounds))
    lam2 = 1.0 - spectral_gap(W)
    dev0 = np.linalg.norm(X0 - X0.mean(axis=0))
    devr = np.linalg.norm(Xr - Xr.mean(axis=0))
    assert devr <= (lam2**rounds) * dev0 + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=10),
    dim=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_complete_mix_equals_exact_average(m, dim, seed):
    """One complete-topology mix is the exact global average for every
    worker — the invariant that keeps gossip a strict generalization."""
    gen = np.random.default_rng(seed)
    states = [gen.normal(size=dim) for _ in range(m)]
    mixed = mix_states(states, mixing_matrix_for("complete", m), rounds=1)
    exact = average_states(states)
    for s in mixed:
        np.testing.assert_allclose(s, exact, atol=1e-12)


class TestCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.config == "vgg_cifar10_fixed_lr"
        assert args.scale == 1.0

    def test_parser_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--config", "does-not-exist"])

    def test_main_runs_smoke_config_and_saves(self, tmp_path, capsys):
        out_path = tmp_path / "runs.json"
        exit_code = main(["--config", "smoke", "--save", str(out_path), "--points", "4"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "adacomm" in captured
        assert "Time to target training loss" in captured
        payload = json.loads(out_path.read_text())
        assert {run["name"] for run in payload["runs"]} == {"sync-sgd", "pasgd-tau8", "adacomm"}

    def test_main_with_explicit_target_and_seed(self, capsys):
        assert main(["--config", "smoke", "--seed", "3", "--target-loss", "0.5"]) == 0
        assert "speed-up" in capsys.readouterr().out.lower()

    def test_parser_accepts_topology_and_staleness(self):
        args = build_parser().parse_args(["--topology", "ring", "--staleness", "0.5"])
        assert args.topology == "ring"
        assert args.staleness == 0.5
        assert build_parser().parse_args([]).topology is None

    def test_parser_rejects_unknown_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--topology", "mesh"])

    def test_main_runs_gossip_via_topology_flag(self, capsys):
        exit_code = main(
            ["--config", "smoke", "--topology", "ring",
             "--set", "methods=('pasgd-tau4',)", "--points", "3"]
        )
        assert exit_code == 0
        assert "pasgd-tau4" in capsys.readouterr().out

    def test_main_runs_async_with_staleness_flag(self, capsys):
        exit_code = main(
            ["--config", "smoke", "--staleness", "0.5",
             "--set", "methods=('async-tau4',)", "--points", "3"]
        )
        assert exit_code == 0
        assert "async-tau4-d0.5" in capsys.readouterr().out
