"""Acceptance suite for the sharded multi-process worker-bank backend.

The PR contract: ``backend="sharded"`` partitions the m workers into
contiguous shards, runs one vectorized bank per shard on a persistent pool
of ≥ 2 worker processes, and the resulting trajectory — per-step parameters,
batch-norm buffers, losses, and RNG stream positions — is *byte-identical*
to ``backend="vectorized"`` (and hence to the loop reference).  Exact
equality, no tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registries import BACKENDS
from repro.data.synthetic import make_gaussian_blobs
from repro.distributed.backends import BackendUnsupported
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.sharded_bank import ShardedBank, ShardWorkerView, shard_slices
from repro.experiments.configs import make_config
from repro.experiments.harness import run_method
from repro.models.mlp import MLP
from repro.nn.layers import Linear, Module
from repro.runtime.distributions import ConstantDelay
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator

from tests.conftest import EQUIVALENCE_FEATURES, _registry_model_fn

#: ≥ 3 registry models, spanning dense, residual-dense, and conv paths.
MODELS_UNDER_TEST = ("mlp", "resnet_lite_mlp", "vgg_lite_cnn")
F, C = EQUIVALENCE_FEATURES, 4


def _cluster(backend, model_fn, n_workers, n_shards=2, dataset=True, **kwargs):
    ds = (
        make_gaussian_blobs(
            n_samples=40 * n_workers, n_features=F, n_classes=C, class_sep=2.0, rng=3
        )
        if dataset
        else None
    )
    runtime = RuntimeSimulator(
        ConstantDelay(1.0), NetworkModel(2.0, "constant"), n_workers=n_workers, rng=0
    )
    return SimulatedCluster(
        model_fn=model_fn,
        dataset=ds,
        runtime=runtime,
        n_workers=n_workers,
        batch_size=8,
        lr=0.05,
        momentum=0.9,
        weight_decay=1e-4,
        seed=17,
        backend=backend,
        n_shards=n_shards,
        **kwargs,
    )


class TestShardSlices:
    def test_contiguous_balanced_partition(self):
        assert shard_slices(16, 2) == [(0, 8), (8, 16)]
        assert shard_slices(5, 2) == [(0, 3), (3, 5)]
        assert shard_slices(4, 3) == [(0, 2), (2, 3), (3, 4)]

    def test_clamps_to_worker_count(self):
        assert shard_slices(2, 8) == [(0, 1), (1, 2)]

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_slices(4, 0)


class TestByteIdenticalToVectorized:
    """The acceptance criterion: sharded ≡ vectorized, byte for byte."""

    @pytest.mark.parametrize("m", [4, 16], ids=["m4", "m16"])
    @pytest.mark.parametrize("model", MODELS_UNDER_TEST)
    def test_per_step_params_losses_rng(self, model, m):
        model_fn = _registry_model_fn(model)
        vectorized = _cluster("vectorized", model_fn, m)
        sharded = _cluster("sharded", model_fn, m)
        try:
            assert sharded.backend_name == "sharded"
            assert sharded.backend.n_shards >= 2
            assert all(p.is_alive() for p in sharded.backend._procs)
            for step in range(4):
                loss_v = vectorized.backend.local_period(2)
                loss_s = sharded.backend.local_period(2)
                np.testing.assert_array_equal(
                    loss_v, loss_s, err_msg=f"{model} m={m}: losses diverged at step {step}"
                )
                np.testing.assert_array_equal(
                    vectorized.backend.get_stacked_states(),
                    sharded.backend.get_stacked_states(),
                    err_msg=f"{model} m={m}: params diverged at step {step}",
                )
                if step % 2 == 1:
                    np.testing.assert_array_equal(
                        vectorized.average_models(), sharded.average_models(),
                        err_msg=f"{model} m={m}: averaging diverged at step {step}",
                    )
            assert vectorized.backend.rng_fingerprint() == sharded.backend.rng_fingerprint()
        finally:
            sharded.close()

    def test_batchnorm_buffers_and_eval_match(self):
        def model_fn():
            return MLP(F, C, hidden_sizes=(8,), batch_norm=True, dropout=0.2, rng=1)

        vectorized = _cluster("vectorized", model_fn, 4)
        sharded = _cluster("sharded", model_fn, 4)
        try:
            for _ in range(2):
                vectorized.run_round(3)
                sharded.run_round(3)
            stacked = vectorized.backend.bank.buffers
            for worker_id in range(4):
                fetched = sharded.backend.worker_buffers(worker_id)
                assert set(fetched) == set(stacked)
                for name, values in stacked.items():
                    np.testing.assert_array_equal(
                        fetched[name], values[worker_id],
                        err_msg=f"worker {worker_id} buffer {name}",
                    )

            probe = make_gaussian_blobs(n_samples=40, n_features=F, n_classes=C, rng=9)

            def eval_loss(model, X, y):
                model.eval()
                try:
                    return float(model.loss(X, y).item())
                finally:
                    model.train()

            assert vectorized.evaluate_synchronized(
                probe.X, probe.y, eval_loss
            ) == sharded.evaluate_synchronized(probe.X, probe.y, eval_loss)
        finally:
            sharded.close()

    def test_data_free_quadratic_matches(self):
        from repro.models.quadratic import NoisyQuadraticProblem, QuadraticObjective

        objective = QuadraticObjective.random(dim=6, rng=0, noise_std=0.1)

        def model_fn():
            return NoisyQuadraticProblem(objective, x0=np.ones(6) * 3.0, rng=0)

        vectorized = _cluster("vectorized", model_fn, 4, dataset=False)
        sharded = _cluster("sharded", model_fn, 4, dataset=False)
        try:
            assert sharded.backend_name == "sharded"
            for tau in (3, 2):
                assert vectorized.run_round(tau) == sharded.run_round(tau)
                np.testing.assert_array_equal(
                    vectorized.synchronized_parameters, sharded.synchronized_parameters
                )
            assert vectorized.backend.rng_fingerprint() == sharded.backend.rng_fingerprint()
        finally:
            sharded.close()

    def test_uneven_shard_split_still_identical(self):
        model_fn = _registry_model_fn("mlp")
        vectorized = _cluster("vectorized", model_fn, 5)
        sharded = _cluster("sharded", model_fn, 5, n_shards=3)
        try:
            assert sharded.backend.shard_slices == [(0, 2), (2, 4), (4, 5)]
            for _ in range(2):
                np.testing.assert_array_equal(
                    vectorized.backend.local_period(3), sharded.backend.local_period(3)
                )
                np.testing.assert_array_equal(
                    vectorized.average_models(), sharded.average_models()
                )
        finally:
            sharded.close()


class TestShardedBackendSurface:
    def test_registered_in_backends_registry(self):
        assert "sharded" in BACKENDS
        assert BACKENDS.get("sharded") is ShardedBank

    def test_worker_views_roundtrip_parameters(self):
        cluster = _cluster("sharded", _registry_model_fn("mlp"), 4)
        try:
            assert all(isinstance(w, ShardWorkerView) for w in cluster.workers)
            view = cluster.workers[3]  # second shard
            target = np.arange(len(cluster.workers[0].get_parameters()), dtype=float)
            view.set_parameters(target)
            np.testing.assert_array_equal(view.get_parameters(), target)
            assert not np.array_equal(cluster.workers[0].get_parameters(), target)
        finally:
            cluster.close()

    def test_shard_sizes_and_weighting(self):
        cluster = _cluster(
            "sharded", _registry_model_fn("mlp"), 4, weighting="shard_size"
        )
        try:
            sizes = cluster.backend.shard_sizes()
            assert sizes is not None and len(sizes) == 4 and sum(sizes) == 160
            cluster.run_round(2)  # weighted averaging executes without error
        finally:
            cluster.close()

    def test_close_is_idempotent_and_kills_pool(self):
        cluster = _cluster("sharded", _registry_model_fn("mlp"), 4)
        backend = cluster.backend
        procs = list(backend._procs)
        assert all(p.is_alive() for p in procs)
        cluster.close()
        cluster.close()
        assert all(not p.is_alive() for p in procs)
        with pytest.raises(RuntimeError, match="closed"):
            backend.local_period(1)

    def test_deferred_broadcast_ack_error_surfaces_on_next_command(self):
        # broadcast/set_lr/reset_momentum acks are fire-and-forget; a shard
        # failure must still surface — on the next synchronizing command,
        # attributed to the command that actually failed.  Pinned to the
        # Pipe transport: over the shm plane a malformed broadcast fails
        # fast in the parent instead (covered below).
        cluster = _cluster(
            "sharded", _registry_model_fn("mlp"), 4, shard_transport="pipe"
        )
        try:
            backend = cluster.backend
            backend.broadcast_state(np.zeros(3))  # wrong length, returns at once
            with pytest.raises(RuntimeError, match="deferred 'broadcast'"):
                backend.get_stacked_states()
            # The drain consumed every queued reply, so the pool protocol is
            # back in sync and the backend keeps working.
            assert len(backend.get_stacked_states()) == 4
        finally:
            cluster.close()

    def test_shm_malformed_broadcast_fails_fast_in_parent(self):
        # The shm plane write validates the broadcast length before any
        # command is sent, so the error is immediate and the pool unharmed.
        cluster = _cluster(
            "sharded", _registry_model_fn("mlp"), 4, shard_transport="shm"
        )
        try:
            backend = cluster.backend
            assert backend.transport == "shm"
            with pytest.raises(ValueError, match="broadcast"):
                backend.broadcast_state(np.zeros(3))
            assert len(backend.get_stacked_states()) == 4
        finally:
            cluster.close()

    def test_context_manager_closes_pool(self):
        with _cluster("sharded", _registry_model_fn("mlp"), 4) as cluster:
            procs = list(cluster.backend._procs)
            cluster.run_round(2)
        assert all(not p.is_alive() for p in procs)

    def test_unsupported_model_raises_before_consuming_streams(self):
        class NoBankModel(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(F, C, rng=0)

            def forward(self, x):
                return self.fc(x)

            def loss(self, x, y):
                from repro.nn.losses import cross_entropy

                return cross_entropy(self(x), y)

        with pytest.raises(BackendUnsupported):
            _cluster("sharded", NoBankModel, 4)

    def test_validation(self):
        with pytest.raises(ValueError, match="need at least one shard"):
            ShardedBank(lambda: MLP(F, C, rng=0), [])
        with pytest.raises(ValueError, match="n_shards"):
            _cluster("sharded", _registry_model_fn("mlp"), 4, n_shards=0)


class TestAutoEscalation:
    def test_auto_picks_sharded_at_threshold(self):
        cluster = _cluster(
            "auto", _registry_model_fn("mlp"), 4, auto_shard_threshold=4
        )
        try:
            assert cluster.backend_name == "sharded"
        finally:
            cluster.close()

    def test_auto_stays_vectorized_below_threshold(self):
        cluster = _cluster(
            "auto", _registry_model_fn("mlp"), 4, auto_shard_threshold=64
        )
        assert cluster.backend_name == "vectorized"

    def test_auto_escalation_trajectory_identical(self):
        # The threshold changes the process layout, never the bytes.
        model_fn = _registry_model_fn("mlp")
        vectorized = _cluster("auto", model_fn, 4, auto_shard_threshold=64)
        escalated = _cluster("auto", model_fn, 4, auto_shard_threshold=2)
        try:
            assert escalated.backend_name == "sharded"
            for _ in range(2):
                assert vectorized.run_round(3) == escalated.run_round(3)
            np.testing.assert_array_equal(
                vectorized.synchronized_parameters, escalated.synchronized_parameters
            )
        finally:
            escalated.close()

    def test_auto_falls_back_to_loop_for_unsupported_model(self):
        class NoBankModel(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(F, C, rng=0)

            def forward(self, x):
                return self.fc(x)

            def loss(self, x, y):
                from repro.nn.losses import cross_entropy

                return cross_entropy(self(x), y)

        cluster = _cluster("auto", NoBankModel, 4, auto_shard_threshold=2)
        assert cluster.backend_name == "loop"


class TestShardedInsideSweepPool:
    """A sweep-pool worker is daemonic and may not spawn shard processes; the
    backend must fall back to in-process shard servers with identical bytes."""

    def test_parallel_sweep_cells_match_serial_bytes(self, tmp_path):
        from repro.sweep import SweepSpec, grid, run_sweep

        # Dropout + batch norm make the cells stream-consuming: the in-process
        # fallback must isolate each shard's template and generators exactly
        # as crossing a process boundary would, or the bytes diverge.
        base = make_config(
            "smoke", backend="sharded", n_train=120, n_test=40,
            wall_time_budget=8.0, methods=("sync-sgd",),
            model_kwargs={"batch_norm": True, "dropout": 0.2},
        )
        spec = SweepSpec("sharded_pool", base, grid(tau=[1, 4]))
        serial = run_sweep(spec, tmp_path / "serial")
        assert serial.ok and len(serial.executed) == 2
        parallel = run_sweep(spec, tmp_path / "parallel", jobs=2)
        assert parallel.ok and len(parallel.executed) == 2
        for address in serial.executed:
            assert (
                (tmp_path / "serial" / "cells" / address / "result.json").read_bytes()
                == (tmp_path / "parallel" / "cells" / address / "result.json").read_bytes()
            )

    def test_inprocess_mode_matches_vectorized_for_stream_models(self):
        # Force the daemonic-parent fallback in-process: the main process is
        # temporarily marked daemonic (legal: it has no _popen), which is how
        # a sweep-pool worker presents itself.  Uneven shards (m=5 over 2)
        # plus dropout+batch norm exercise per-shard stream isolation.
        import multiprocessing

        def model_fn():
            return MLP(F, C, hidden_sizes=(8,), batch_norm=True, dropout=0.3, rng=1)

        vectorized = _cluster("vectorized", model_fn, 5)
        process = multiprocessing.current_process()
        process.daemon = True
        try:
            sharded = _cluster("sharded", model_fn, 5, n_shards=2)
        finally:
            process.daemon = False
        try:
            assert not sharded.backend.pooled
            assert sharded.backend._procs == []
            for _ in range(2):
                np.testing.assert_array_equal(
                    vectorized.backend.local_period(3), sharded.backend.local_period(3)
                )
                np.testing.assert_array_equal(
                    vectorized.average_models(), sharded.average_models()
                )
            assert vectorized.backend.rng_fingerprint() == sharded.backend.rng_fingerprint()
        finally:
            sharded.close()

    def test_wrong_sized_stream_slice_fails_at_construction(self):
        from repro.distributed.worker_bank import WorkerBank

        template = MLP(F, C, hidden_sizes=(8,), dropout=0.3, rng=1)
        shards = [
            make_gaussian_blobs(n_samples=30, n_features=F, n_classes=C, rng=s)
            for s in range(3)
        ]
        streams = [[np.random.default_rng(0), np.random.default_rng(1)]]  # 2 != 3
        with pytest.raises(ValueError, match="3 worker"):
            WorkerBank(
                model_fn=None, shards=shards, batch_size=8,
                template=template, stream_rngs=streams,
            )

    def test_main_process_backend_is_pooled(self):
        cluster = _cluster("sharded", _registry_model_fn("mlp"), 4)
        try:
            assert cluster.backend.pooled
            assert len(cluster.backend._procs) == 2
        finally:
            cluster.close()


class TestHarnessAndConfigWiring:
    def test_config_validates_and_roundtrips(self):
        config = make_config("smoke", backend="sharded", backend_shards=2)
        from repro.experiments.configs import ExperimentConfig

        rebuilt = ExperimentConfig.from_dict(config.to_dict())
        assert rebuilt.backend == "sharded" and rebuilt.backend_shards == 2
        with pytest.raises(ValueError, match="backend_shards"):
            make_config("smoke", backend_shards=0).validate()
        with pytest.raises(ValueError, match="auto_shard_threshold"):
            make_config("smoke", auto_shard_threshold=0).validate()

    def test_run_method_on_sharded_matches_vectorized(self):
        def config(backend):
            return make_config(
                "smoke", backend=backend, n_train=160, n_test=60,
                wall_time_budget=20.0, momentum=0.9,
            )

        record_sharded = run_method(config("sharded"), "pasgd-tau4")
        assert record_sharded.config["backend"] == "sharded"
        record_vectorized = run_method(config("vectorized"), "pasgd-tau4")
        assert [p.train_loss for p in record_sharded.points] == [
            p.train_loss for p in record_vectorized.points
        ]
        np.testing.assert_array_equal(
            [p.test_accuracy for p in record_sharded.points],
            [p.test_accuracy for p in record_vectorized.points],
        )

    def test_harness_auto_escalates_above_threshold(self):
        record = run_method(
            make_config(
                "smoke", backend="auto", auto_shard_threshold=2,
                n_train=160, n_test=60, wall_time_budget=10.0,
            ),
            "sync-sgd",
        )
        assert record.config["backend"] == "sharded"

    def test_experiment_builder_shards(self):
        from repro.api import Experiment

        config = Experiment("smoke").backend("sharded").shards(3).build()
        assert config.backend == "sharded" and config.backend_shards == 3

    def test_cli_lists_and_accepts_sharded(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list", "backends"]) == 0
        assert "sharded" in capsys.readouterr().out.split()
        assert main([
            "--config", "smoke", "--backend", "sharded", "--scale", "0.1",
            "--set", "methods=('sync-sgd',)",
        ]) == 0
        assert "backend=sharded" in capsys.readouterr().out
