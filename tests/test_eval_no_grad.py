"""Regression tests: evaluation passes must not build an autograd graph.

Evaluation never calls ``backward()``, so graph construction there is pure
overhead.  These tests plant a probe module that records whether gradient
tracking was enabled during each forward pass, and assert that every
evaluation surface — ``Worker.evaluate_loss``, the trainer's train-loss and
test-accuracy metrics — runs with gradients disabled while training steps
keep them enabled.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedules import FixedCommunicationSchedule
from repro.core.trainer import PASGDTrainer, TrainerConfig
from repro.data.synthetic import make_gaussian_blobs
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.nn.layers import Linear, Module
from repro.nn.losses import bank_cross_entropy, cross_entropy
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad
from repro.runtime.distributions import ConstantDelay
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator

F, C = 8, 3


class GradProbe(Module):
    """Identity layer that records ``is_grad_enabled()`` at each forward."""

    def __init__(self):
        super().__init__()
        self.calls: list[bool] = []

    def forward(self, x: Tensor) -> Tensor:
        self.calls.append(is_grad_enabled())
        return x

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        self.calls.append(is_grad_enabled())
        return x


class ProbedModel(Module):
    """Minimal classifier with a grad probe in its forward path."""

    def __init__(self, rng=0):
        super().__init__()
        self.probe = GradProbe()
        self.fc = Linear(F, C, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(self.probe(x))

    def loss(self, x, y) -> Tensor:
        return cross_entropy(self(x), y)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return self.fc.bank_forward(self.probe.bank_forward(x, params), params, f"{prefix}fc.")

    def bank_loss(self, x, y, params) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return bank_cross_entropy(self.bank_forward(x, params), y)


def _dataset():
    return make_gaussian_blobs(
        n_samples=120, n_features=F, n_classes=C, class_sep=2.0, rng=0
    )


def test_no_grad_context_disables_graph_construction():
    t = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        out = (t * 2.0).sum()
    assert not out.requires_grad and out._parents == ()
    out2 = (t * 2.0).sum()
    assert out2.requires_grad


def test_worker_evaluate_loss_builds_no_graph():
    model = ProbedModel()
    worker = Worker(0, model, _dataset(), batch_size=16, lr=0.1, rng=0)
    worker.evaluate_loss()
    assert model.probe.calls == [False]
    model.probe.calls.clear()
    worker.local_step()  # training still tracks gradients
    assert model.probe.calls == [True]


def test_worker_evaluate_loss_value_unchanged_by_no_grad():
    dataset = _dataset()
    model = ProbedModel()
    worker = Worker(0, model, dataset, batch_size=16, lr=0.1, rng=0)
    expected = float(model.loss(dataset.X, dataset.y).item())
    assert worker.evaluate_loss(dataset.X, dataset.y) == expected


def _trainer(backend):
    dataset = _dataset()
    runtime = RuntimeSimulator(
        ConstantDelay(1.0), NetworkModel(1.0, "constant"), n_workers=2, rng=0
    )
    cluster = SimulatedCluster(
        lambda: ProbedModel(rng=7), dataset, runtime, n_workers=2,
        batch_size=8, lr=0.1, seed=0, backend=backend,
    )
    trainer = PASGDTrainer(
        cluster=cluster,
        schedule=FixedCommunicationSchedule(2),
        train_eval_data=(dataset.X, dataset.y),
        test_eval_data=(dataset.X, dataset.y),
        config=TrainerConfig(max_iterations=4),
    )
    return trainer, cluster


def test_trainer_eval_metrics_build_no_graph():
    trainer, cluster = _trainer("loop")
    probe = cluster.workers[0].model.probe
    probe.calls.clear()
    trainer._eval_train_loss(fallback_loss=0.0)
    trainer._eval_test_accuracy()
    assert probe.calls == [False, False]


def test_trainer_run_evaluates_without_graph_and_trains_with_it():
    trainer, cluster = _trainer("loop")
    probe = cluster.workers[0].model.probe
    probe.calls.clear()
    trainer.train()
    assert False in probe.calls  # evaluation passes ran grad-free
    assert True in probe.calls  # training steps still tracked gradients


def test_trainer_eval_no_graph_on_vectorized_backend():
    trainer, cluster = _trainer("vectorized")
    assert cluster.backend_name == "vectorized"
    probe = cluster.backend.model.probe
    probe.calls.clear()
    trainer._eval_train_loss(fallback_loss=0.0)
    trainer._eval_test_accuracy()
    assert probe.calls == [False, False]
