"""Byte-compare current end-to-end trajectories against committed goldens.

The fixtures under ``tests/golden/`` are the canonical JSON payloads of
small seeded harness runs (see ``tests/regen_golden.py``).  These tests
re-run each workload in-process and demand the exact committed bytes, so any
refactor that silently changes a trajectory — one float, one RNG draw, one
config default — fails here with a diffable fixture name instead of passing
unnoticed.  Intentional changes regenerate with
``python -m tests.regen_golden`` and commit the diff.
"""

from __future__ import annotations

import difflib

import pytest

from tests.regen_golden import (
    GOLDEN_DIR,
    golden_configs,
    golden_payload,
    render_golden,
)

CONFIGS = golden_configs()


def test_every_fixture_is_committed():
    committed = sorted(p.stem for p in GOLDEN_DIR.glob("*.json"))
    assert committed == sorted(CONFIGS), (
        "tests/golden/ out of sync with golden_configs(); run "
        "`python -m tests.regen_golden` and commit the result"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_trajectory_matches_committed_bytes(name):
    path = GOLDEN_DIR / f"{name}.json"
    assert path.is_file(), f"missing fixture {path}; run `python -m tests.regen_golden`"
    expected = path.read_text()
    actual = render_golden(golden_payload(CONFIGS[name]))
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(), actual.splitlines(),
                fromfile=f"golden/{name}.json", tofile="current run", lineterm="", n=2,
            )
        )
        pytest.fail(
            f"golden trajectory {name!r} diverged from the committed bytes.\n"
            f"If this change is intentional, run `python -m tests.regen_golden` "
            f"and commit the updated fixture.\nFirst differences:\n"
            + "\n".join(diff.splitlines()[:40])
        )


def test_regeneration_is_deterministic():
    """Two in-process runs of the same workload produce identical bytes."""
    name = "smoke_mlp_sync_adacomm"
    first = render_golden(golden_payload(CONFIGS[name]))
    second = render_golden(golden_payload(CONFIGS[name]))
    assert first == second
