"""Integration tests for the paper's headline qualitative claims.

These tests run small end-to-end experiments on the simulated cluster and
check the *shape* of the paper's findings:

1. PASGD with τ > 1 has a higher runtime speed-up over synchronous SGD when
   the communication/computation ratio α is larger (Figure 4).
2. Periodic averaging mitigates stragglers: with exponential compute times
   the per-iteration runtime of PASGD is lower and lighter-tailed (Figure 5).
3. On a noisy convex problem, a large fixed τ converges to a *higher* loss
   floor than fully synchronous SGD, while reaching moderate loss levels
   sooner in wall-clock time (Figures 1, 6, 9).
4. ADACOMM reaches a given target loss in less wall-clock time than fully
   synchronous SGD and ends at a loss floor comparable to (or better than)
   the best method (Figures 9–11, Table 1).
5. Decreasing-τ schedules satisfy Theorem 3's conditions more easily than
   constant-τ schedules with the same learning rates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedules import FixedCommunicationSchedule
from repro.core.trainer import PASGDTrainer, TrainerConfig
from repro.distributed.cluster import SimulatedCluster
from repro.models.quadratic import NoisyQuadraticProblem, QuadraticObjective
from repro.runtime.distributions import ConstantDelay, ExponentialDelay
from repro.runtime.network import NetworkModel
from repro.runtime.order_stats import empirical_max_distribution
from repro.runtime.simulator import RuntimeSimulator
from repro.runtime.model import speedup_constant_delays


# ---------------------------------------------------------------------------
# A shared noisy quadratic workload: convex, with an exactly known loss floor.
# ---------------------------------------------------------------------------
DIM = 12
NOISE_STD = 0.6
LR = 0.05


def quadratic_cluster(alpha: float, n_workers: int = 4, seed: int = 0) -> SimulatedCluster:
    objective = QuadraticObjective.random(dim=DIM, condition_number=5.0, noise_std=NOISE_STD, rng=7)

    def model_fn():
        return NoisyQuadraticProblem(objective, x0=np.full(DIM, 4.0), rng=seed)

    runtime = RuntimeSimulator(
        ConstantDelay(1.0), NetworkModel(alpha, "constant"), n_workers=n_workers, rng=seed
    )
    cluster = SimulatedCluster(model_fn, None, runtime, n_workers=n_workers, lr=LR, seed=seed)
    cluster._objective = objective  # stash for evaluation
    return cluster


def run_quadratic(schedule, alpha: float, wall_time: float, seed: int = 0):
    cluster = quadratic_cluster(alpha, seed=seed)
    trainer = PASGDTrainer(
        cluster,
        schedule,
        loss_fn=lambda model: cluster._objective.value(cluster.synchronized_parameters),
        config=TrainerConfig(max_wall_time=wall_time),
        name=schedule.label,
    )
    return trainer.train()


class TestRuntimeClaims:
    def test_speedup_grows_with_alpha_and_tau(self):
        """Figure 4: higher α and larger τ both increase the runtime speed-up."""
        assert speedup_constant_delays(0.9, 20) > speedup_constant_delays(0.5, 20)
        assert speedup_constant_delays(0.9, 20) > speedup_constant_delays(0.9, 5)
        assert speedup_constant_delays(0.9, 100) == pytest.approx(1.9 / 1.009, rel=1e-3)

    def test_straggler_mitigation_lighter_tail(self):
        """Figure 5: PASGD's per-iteration runtime has a smaller mean and lighter tail."""
        sync = empirical_max_distribution(ExponentialDelay(1.0), m=16, tau=1, comm_delay=1.0, rng=0)
        pasgd = empirical_max_distribution(ExponentialDelay(1.0), m=16, tau=10, comm_delay=1.0, rng=0)
        assert pasgd.mean() < 0.75 * sync.mean()
        assert np.quantile(pasgd, 0.95) < np.quantile(sync, 0.95)

    def test_wall_clock_throughput_ordering_in_simulation(self):
        """With α=4 the simulated cluster completes ~4-5x more local iterations per
        unit time at τ=20 than at τ=1 (communication amortization)."""
        rec_sync = run_quadratic(FixedCommunicationSchedule(1), alpha=4.0, wall_time=300.0)
        rec_tau20 = run_quadratic(FixedCommunicationSchedule(20), alpha=4.0, wall_time=300.0)
        iters_sync = rec_sync.points[-1].iteration
        iters_tau20 = rec_tau20.points[-1].iteration
        assert iters_tau20 > 3.0 * iters_sync


class TestErrorRuntimeTradeoff:
    """Error-runtime trade-off on the calibrated classification workload.

    Note that on a purely *quadratic* objective with additive gradient noise,
    periodic averaging incurs no extra error floor at all (the gradient is
    linear, so averaging the local trajectories is equivalent to running
    synchronous SGD on the averaged noise); the floor phenomenon the paper
    describes requires a nonlinear gradient.  These tests therefore use the
    softmax-regression workload of the experiment harness, which is the same
    setting the Figure-9 benchmark reproduces.
    """

    @pytest.fixture(scope="class")
    def vgg_store(self):
        from repro.experiments.configs import make_config
        from repro.experiments.harness import run_experiment

        config = make_config("vgg_cifar10_fixed_lr", n_train=2400, wall_time_budget=1800.0)
        return run_experiment(config)

    @staticmethod
    def _floor(record) -> float:
        return float(np.mean(record.train_losses[-8:]))

    def test_large_tau_has_higher_error_floor(self, vgg_store):
        """Figures 1/6/9: with a fixed learning rate, τ=100 converges to a higher
        loss floor than fully synchronous SGD given enough wall-clock time."""
        floor_sync = self._floor(vgg_store.get("sync-sgd"))
        floor_tau100 = self._floor(vgg_store.get("pasgd-tau100"))
        assert floor_tau100 > 1.1 * floor_sync

    def test_large_tau_reaches_moderate_loss_sooner(self, vgg_store):
        """The flip side of the trade-off: at high α, large τ hits moderate loss
        levels earlier in wall-clock time than synchronous SGD."""
        rec_sync = vgg_store.get("sync-sgd")
        rec_tau20 = vgg_store.get("pasgd-tau20")
        target = 0.9  # moderate loss level reached early by every method
        assert rec_tau20.time_to_loss(target) < rec_sync.time_to_loss(target)

    def test_adacomm_wins_on_both_ends(self, vgg_store):
        """ADACOMM reaches a mid-training target faster than sync SGD *and* ends
        at a floor comparable to sync SGD (the win-win of Figure 7)."""
        rec_ada = vgg_store.get("adacomm")
        rec_sync = vgg_store.get("sync-sgd")
        rec_tau100 = vgg_store.get("pasgd-tau100")

        target = 0.8
        assert rec_ada.time_to_loss(target) < 0.8 * rec_sync.time_to_loss(target)

        floor_ada = self._floor(rec_ada)
        assert floor_ada < self._floor(rec_tau100)  # far below the extreme-throughput baseline
        assert floor_ada < 1.15 * self._floor(rec_sync)  # and comparable to fully synchronous SGD

    def test_adacomm_tau_sequence_is_decreasing(self, vgg_store):
        taus = [p.tau for p in vgg_store.get("adacomm").points[1:]]
        assert taus[0] == 20
        assert taus[-1] < taus[0]
        assert all(b <= a for a, b in zip(taus, taus[1:]))

    def test_quadratic_objective_has_no_averaging_penalty(self):
        """Sanity check of the note above: on a quadratic objective the floors of
        sync SGD and PASGD(τ=30) coincide (within Monte-Carlo tolerance)."""
        budget = 3000.0
        rec_sync = run_quadratic(FixedCommunicationSchedule(1), alpha=1.0, wall_time=budget)
        rec_tau = run_quadratic(FixedCommunicationSchedule(30), alpha=1.0, wall_time=budget)
        floor_sync = np.mean(rec_sync.train_losses[-10:])
        floor_tau = np.mean(rec_tau.train_losses[-10:])
        assert floor_tau == pytest.approx(floor_sync, rel=0.5)


class TestTheoremThreeShape:
    def test_decreasing_tau_schedule_easier_to_satisfy(self):
        from repro.core.theory import adacomm_convergence_conditions

        lrs = [0.1 / np.sqrt(r + 1) for r in range(200)]
        decreasing_taus = [max(1, 20 - r // 10) for r in range(200)]
        constant_taus = [20] * 200
        dec = adacomm_convergence_conditions(lrs, decreasing_taus)
        const = adacomm_convergence_conditions(lrs, constant_taus)
        assert dec["sum_lr2_tau"] < const["sum_lr2_tau"]
        assert dec["sum_lr3_tau2"] < const["sum_lr3_tau2"]
