"""Tests for the model zoo (repro.models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    MLP,
    LinearRegressionModel,
    NoisyQuadraticProblem,
    QuadraticObjective,
    SmallCNN,
    SoftmaxRegression,
    available_models,
    build_model,
    resnet_lite_cnn,
    resnet_lite_mlp,
    vgg_lite_cnn,
    vgg_lite_mlp,
)
from repro.nn.losses import accuracy
from repro.optim.sgd import SGD


class TestSoftmaxRegression:
    def test_forward_shape(self):
        model = SoftmaxRegression(6, 4, rng=0)
        assert model(np.zeros((5, 6))).shape == (5, 4)

    def test_loss_decreases_under_sgd(self):
        gen = np.random.default_rng(0)
        X = gen.normal(size=(64, 4))
        w = gen.normal(size=(4, 3))
        y = (X @ w).argmax(axis=1)
        model = SoftmaxRegression(4, 3, rng=0)
        opt = SGD(model, lr=0.5)
        first = model.loss(X, y).item()
        for _ in range(60):
            opt.zero_grad()
            model.loss(X, y).backward()
            opt.step()
        assert model.loss(X, y).item() < 0.5 * first

    def test_flattens_higher_dim_input(self):
        model = SoftmaxRegression(12, 2, rng=0)
        assert model(np.zeros((3, 3, 4))).shape == (3, 2)


class TestLinearRegression:
    def test_recovers_weights(self):
        gen = np.random.default_rng(1)
        X = gen.normal(size=(200, 5))
        w_star = gen.normal(size=(5, 1))
        y = X @ w_star
        model = LinearRegressionModel(5, 1, rng=0)
        opt = SGD(model, lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            model.loss(X, y).backward()
            opt.step()
        np.testing.assert_allclose(model.fc.weight.data, w_star, atol=0.05)

    def test_loss_accepts_1d_target(self):
        model = LinearRegressionModel(3, 1, rng=0)
        loss = model.loss(np.zeros((4, 3)), np.zeros(4))
        assert np.isfinite(loss.item())


class TestMLPVariants:
    def test_mlp_parameter_count(self):
        model = MLP(10, 3, hidden_sizes=(8, 4), rng=0)
        expected = 10 * 8 + 8 + 8 * 4 + 4 + 4 * 3 + 3
        assert model.num_parameters() == expected

    def test_mlp_no_hidden_is_linear(self):
        model = MLP(10, 3, hidden_sizes=(), rng=0)
        assert model.num_parameters() == 10 * 3 + 3

    def test_mlp_forward_and_loss(self):
        model = MLP(6, 4, hidden_sizes=(8,), rng=0)
        X = np.random.default_rng(0).normal(size=(5, 6))
        y = np.array([0, 1, 2, 3, 0])
        assert model(X).shape == (5, 4)
        assert np.isfinite(model.loss(X, y).item())

    def test_mlp_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP(4, 2, activation="gelu")

    def test_vgg_lite_has_more_params_than_resnet_lite(self):
        vgg = vgg_lite_mlp(n_features=64, rng=0)
        resnet = resnet_lite_mlp(n_features=64, rng=0)
        assert vgg.num_parameters() > resnet.num_parameters()

    def test_residual_mlp_trains(self):
        gen = np.random.default_rng(2)
        X = gen.normal(size=(48, 8))
        y = (X[:, 0] > 0).astype(int)
        model = resnet_lite_mlp(n_features=8, n_classes=2, rng=0)
        opt = SGD(model, lr=0.05)
        first = model.loss(X, y).item()
        for _ in range(40):
            opt.zero_grad()
            model.loss(X, y).backward()
            opt.step()
        assert model.loss(X, y).item() < first


class TestCNNs:
    def test_small_cnn_shapes(self):
        model = SmallCNN(in_channels=3, image_size=8, channels=(4, 8), n_classes=5, rng=0)
        out = model(np.zeros((2, 3, 8, 8)))
        assert out.shape == (2, 5)

    def test_cnn_accepts_flat_input(self):
        model = SmallCNN(in_channels=3, image_size=8, channels=(4,), n_classes=3, rng=0)
        out = model(np.zeros((2, 3 * 8 * 8)))
        assert out.shape == (2, 3)

    def test_cnn_trains_on_tiny_task(self):
        gen = np.random.default_rng(0)
        X = gen.normal(size=(32, 3, 8, 8))
        y = (X.mean(axis=(1, 2, 3)) > 0).astype(int)
        model = SmallCNN(in_channels=3, image_size=8, channels=(4,), n_classes=2, rng=0)
        opt = SGD(model, lr=0.1)
        first = model.loss(X, y).item()
        for _ in range(30):
            opt.zero_grad()
            model.loss(X, y).backward()
            opt.step()
        assert model.loss(X, y).item() < first
        assert accuracy(model(X), y) > 0.6

    def test_vgg_lite_cnn_wider_than_resnet_lite_cnn(self):
        assert vgg_lite_cnn(rng=0).num_parameters() > resnet_lite_cnn(rng=0).num_parameters()

    def test_cnn_invalid_geometry(self):
        with pytest.raises(ValueError):
            SmallCNN(image_size=2, channels=(4, 8, 16), rng=0)


class TestQuadraticObjective:
    def test_value_and_gradient_at_optimum(self):
        obj = QuadraticObjective.random(dim=6, rng=0, noise_std=0.0, f_inf=2.0)
        assert obj.value(obj.optimum) == pytest.approx(2.0)
        np.testing.assert_allclose(obj.gradient(obj.optimum), np.zeros(6), atol=1e-12)

    def test_lipschitz_is_max_eigenvalue(self):
        obj = QuadraticObjective.random(dim=5, condition_number=10.0, rng=1)
        assert obj.lipschitz_constant == pytest.approx(1.0, rel=1e-6)

    def test_stochastic_gradient_unbiased(self):
        obj = QuadraticObjective.random(dim=4, rng=2, noise_std=0.5)
        x = np.ones(4)
        gen = np.random.default_rng(0)
        draws = np.stack([obj.stochastic_gradient(x, gen) for _ in range(4000)])
        np.testing.assert_allclose(draws.mean(axis=0), obj.gradient(x), atol=0.05)

    def test_gradient_noise_variance(self):
        obj = QuadraticObjective.random(dim=8, rng=3, noise_std=0.3)
        assert obj.gradient_noise_variance == pytest.approx(8 * 0.09)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuadraticObjective(matrix=np.eye(3), optimum=np.zeros(2))
        with pytest.raises(ValueError):
            QuadraticObjective(matrix=np.array([[1.0, 2.0], [0.0, 1.0]]), optimum=np.zeros(2))

    def test_noisy_quadratic_problem_sgd_converges(self):
        obj = QuadraticObjective.random(dim=5, rng=4, noise_std=0.01)
        problem = NoisyQuadraticProblem(obj, x0=obj.optimum + 2.0, rng=0)
        opt = SGD(problem, lr=0.2)
        first = problem.current_value()
        for _ in range(200):
            opt.zero_grad()
            problem.loss().backward()
            opt.step()
        assert problem.current_value() < 0.05 * first

    def test_noisy_quadratic_loss_item_equals_exact_value(self):
        obj = QuadraticObjective.random(dim=3, rng=5, noise_std=0.2)
        problem = NoisyQuadraticProblem(obj, rng=0)
        assert problem.loss().item() == pytest.approx(problem.current_value(), abs=1e-10)


class TestRegistry:
    def test_available_models_nonempty(self):
        assert "softmax" in available_models()
        assert "mlp" in available_models()

    def test_build_model(self):
        model = build_model("softmax", n_features=4, n_classes=2, rng=0)
        assert model.num_parameters() == 4 * 2 + 2

    def test_build_unknown_raises(self):
        with pytest.raises(ValueError):
            build_model("transformer-xxl")
