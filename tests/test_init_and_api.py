"""Tests for weight initializers and the top-level package API surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.nn import init
from repro.nn.layers import Conv2d, Linear
from repro.models.mlp import MLP


class TestInitializers:
    def test_zeros(self):
        np.testing.assert_allclose(init.zeros((3, 2)), np.zeros((3, 2)))

    def test_uniform_bounds(self):
        w = init.uniform((1000,), -0.5, 0.5, rng=0)
        assert w.min() >= -0.5 and w.max() <= 0.5

    def test_normal_std(self):
        w = init.normal((20000,), std=0.3, rng=0)
        assert np.std(w) == pytest.approx(0.3, rel=0.05)

    def test_xavier_uniform_scale_linear(self):
        w = init.xavier_uniform((64, 64), rng=0)
        limit = np.sqrt(6.0 / 128)
        assert np.abs(w).max() <= limit + 1e-12
        assert np.abs(w).max() > 0.5 * limit

    def test_kaiming_uniform_scale_conv(self):
        w = init.kaiming_uniform((16, 8, 3, 3), rng=0)
        fan_in = 8 * 9
        limit = np.sqrt(6.0 / fan_in)
        assert np.abs(w).max() <= limit + 1e-12

    def test_kaiming_normal_variance(self):
        w = init.kaiming_normal((400, 400), rng=0)
        assert np.std(w) == pytest.approx(np.sqrt(2.0 / 400), rel=0.1)

    def test_reproducible_with_seed(self):
        np.testing.assert_allclose(init.xavier_uniform((5, 5), rng=7), init.xavier_uniform((5, 5), rng=7))

    def test_layers_use_seeded_init(self):
        a, b = Linear(8, 4, rng=3), Linear(8, 4, rng=3)
        np.testing.assert_allclose(a.weight.data, b.weight.data)
        c, d = Conv2d(2, 4, 3, rng=9), Conv2d(2, 4, 3, rng=9)
        np.testing.assert_allclose(c.weight.data, d.weight.data)

    def test_models_with_same_seed_are_identical(self):
        a = MLP(10, 3, hidden_sizes=(8, 8), rng=5)
        b = MLP(10, 3, hidden_sizes=(8, 8), rng=5)
        np.testing.assert_allclose(a.get_flat_parameters(), b.get_flat_parameters())


class TestPackageAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str) and repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name} but it is not importable"

    def test_key_entry_points_present(self):
        for name in (
            "make_config",
            "run_experiment",
            "PASGDTrainer",
            "SimulatedCluster",
            "AdaCommSchedule",
            "BlockMomentum",
            "error_runtime_bound",
            "optimal_communication_period",
        ):
            assert name in repro.__all__

    def test_subpackage_alls_resolve(self):
        import repro.core as core
        import repro.data as data
        import repro.distributed as distributed
        import repro.models as models
        import repro.nn as nn
        import repro.optim as optim
        import repro.runtime as runtime
        import repro.utils as utils

        for module in (core, data, distributed, models, nn, optim, runtime, utils):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"

    def test_public_functions_have_docstrings(self):
        import inspect

        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"
