"""Full-coverage loop↔bank equivalence: CNNs, batch norm, dropout, quadratics.

The PR 4 contract: with ``backend="auto"`` every built-in model executes on
the vectorized worker bank, and a seeded run's per-step trajectory —
parameters, buffers, losses, and RNG stream positions — is *byte-identical*
to the loop backend's.  These tests therefore assert exact equality, no
tolerances: NumPy's stacked matmul runs the identical per-slice GEMM a loop
replica would, reductions reduce in the same per-slice order, and stochastic
layers consume the per-worker streams the loop replicas would own
(``repro.nn.bank.attach_bank_streams``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_gaussian_blobs
from repro.distributed.cluster import SimulatedCluster
from repro.experiments.configs import make_config
from repro.experiments.harness import run_method
from repro.models.cnn import SmallCNN
from repro.models.mlp import MLP
from repro.models.quadratic import NoisyQuadraticProblem, QuadraticObjective
from repro.models.registry import available_models
from repro.nn.bank import ParameterBank, attach_bank_streams, bank_compatible
from repro.nn.layers import BatchNorm1d, Conv2d, Dropout
from repro.nn.tensor import Tensor
from repro.runtime.distributions import ConstantDelay
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator

M, B, C = 3, 6, 4


def _cluster(backend, model_fn, n_features, n_workers=3, dataset=True, momentum=0.9):
    ds = (
        make_gaussian_blobs(
            n_samples=180, n_features=n_features, n_classes=C, class_sep=2.0, rng=3
        )
        if dataset
        else None
    )
    runtime = RuntimeSimulator(
        ConstantDelay(1.0), NetworkModel(2.0, "constant"), n_workers=n_workers, rng=0
    )
    return SimulatedCluster(
        model_fn=model_fn,
        dataset=ds,
        runtime=runtime,
        n_workers=n_workers,
        batch_size=8,
        lr=0.05,
        momentum=momentum,
        weight_decay=1e-4,
        seed=17,
        backend=backend,
    )


def _generator_state(gen) -> dict:
    return gen.bit_generator.state


CASES = {
    "cnn": (lambda: SmallCNN(in_channels=3, image_size=4, channels=(4,), n_classes=C, rng=0), 48),
    "batch_norm": (lambda: MLP(12, C, hidden_sizes=(8,), batch_norm=True, rng=1), 12),
    "dropout": (lambda: MLP(12, C, hidden_sizes=(8,), dropout=0.3, rng=2), 12),
    "bn_dropout": (
        lambda: MLP(12, C, hidden_sizes=(8,), batch_norm=True, dropout=0.2, rng=4),
        12,
    ),
}


class TestByteIdenticalTrajectories:
    @pytest.mark.parametrize("case", list(CASES), ids=list(CASES))
    def test_per_step_params_and_losses(self, case):
        model_fn, n_features = CASES[case]
        loop = _cluster("loop", model_fn, n_features)
        bank = _cluster("auto", model_fn, n_features)
        assert bank.backend_name == "vectorized"
        # Step at the finest granularity (τ=1 periods plus averaging) so any
        # divergence is pinned to the exact local step that introduced it.
        for step in range(6):
            loss_l = loop.run_local_period(1)
            loss_v = bank.run_local_period(1)
            assert loss_l == loss_v, f"{case}: loss diverged at step {step}"
            np.testing.assert_array_equal(
                loop.backend.get_stacked_states(),
                bank.backend.get_stacked_states(),
                err_msg=f"{case}: params diverged at step {step}",
            )
            if step % 3 == 2:
                np.testing.assert_array_equal(
                    loop.average_models(), bank.average_models(),
                    err_msg=f"{case}: averaging diverged at step {step}",
                )

    def test_batchnorm_buffers_track_loop_replicas(self):
        model_fn, n_features = CASES["batch_norm"]
        loop = _cluster("loop", model_fn, n_features)
        bank = _cluster("auto", model_fn, n_features)
        for _ in range(2):
            loop.run_round(3)
            bank.run_round(3)
        stacked = bank.backend.bank.buffers
        assert set(stacked) == {"net.layer1.running_mean", "net.layer1.running_var"}
        for i, worker in enumerate(loop.workers):
            ref = dict(worker.model.named_buffers())
            for name, values in stacked.items():
                np.testing.assert_array_equal(
                    values[i], ref[name], err_msg=f"worker {i} buffer {name}"
                )
        # Averaging broadcast the parameters but left each worker's running
        # stats local — they must genuinely differ across workers.
        mean = stacked["net.layer1.running_mean"]
        assert not np.array_equal(mean[0], mean[1])

    def test_batchnorm_eval_uses_worker0_stats_on_both_backends(self):
        model_fn, n_features = CASES["batch_norm"]
        loop = _cluster("loop", model_fn, n_features)
        bank = _cluster("auto", model_fn, n_features)
        for _ in range(2):
            loop.run_round(4)
            bank.run_round(4)
        probe = make_gaussian_blobs(n_samples=60, n_features=n_features, n_classes=C, rng=9)

        def eval_loss(model, X, y):
            model.eval()
            try:
                return float(model.loss(X, y).item())
            finally:
                model.train()

        loss_l = loop.evaluate_synchronized(probe.X, probe.y, eval_loss)
        loss_v = bank.evaluate_synchronized(probe.X, probe.y, eval_loss)
        assert loss_l == loss_v

    @pytest.mark.parametrize("case", ["dropout", "bn_dropout"], ids=["dropout", "bn_dropout"])
    def test_rng_stream_positions_identical(self, case):
        model_fn, n_features = CASES[case]
        loop = _cluster("loop", model_fn, n_features)
        bank = _cluster("auto", model_fn, n_features)
        for _ in range(3):
            loop.run_round(2)
            bank.run_round(2)
        # Mini-batch sampling streams: one BatchLoader per worker on both
        # backends, positioned identically after the same number of draws.
        for worker, stacked_loader in zip(loop.workers, bank.backend.loader.loaders):
            assert _generator_state(worker.loader._rng) == _generator_state(
                stacked_loader._rng
            )
        # Dropout mask streams: the bank template's per-worker streams sit
        # exactly where each loop replica's private generator does.
        loop_streams = [list(w.model.stream_modules()) for w in loop.workers]
        bank_mods = list(bank.backend.model.stream_modules())
        assert bank_mods and all(len(mods) == len(bank_mods) for mods in loop_streams)
        for mod_idx, bank_mod in enumerate(bank_mods):
            for worker_idx, mods in enumerate(loop_streams):
                assert _generator_state(bank_mod._bank_rngs[worker_idx]) == (
                    _generator_state(mods[mod_idx]._rng)
                ), f"stream module {mod_idx}, worker {worker_idx}"

    def test_eval_consumes_no_dropout_stream(self):
        model_fn, n_features = CASES["dropout"]
        bank = _cluster("auto", model_fn, n_features)
        bank.run_round(2)
        states = [
            _generator_state(rng)
            for mod in bank.backend.model.stream_modules()
            for rng in mod._bank_rngs
        ]
        probe = make_gaussian_blobs(n_samples=40, n_features=n_features, n_classes=C, rng=9)

        def eval_loss(model, X, y):
            model.eval()
            try:
                return float(model.loss(X, y).item())
            finally:
                model.train()

        bank.evaluate_synchronized(probe.X, probe.y, eval_loss)
        after = [
            _generator_state(rng)
            for mod in bank.backend.model.stream_modules()
            for rng in mod._bank_rngs
        ]
        assert states == after


class TestQuadraticBank:
    def _objective(self):
        return QuadraticObjective.random(dim=6, rng=0, noise_std=0.1)

    def test_data_free_trajectory_byte_identical(self):
        obj = self._objective()

        def model_fn():
            return NoisyQuadraticProblem(obj, x0=np.ones(6) * 3.0, rng=0)

        loop = _cluster("loop", model_fn, 0, dataset=False, momentum=0.0)
        bank = _cluster("auto", model_fn, 0, dataset=False, momentum=0.0)
        assert bank.backend_name == "vectorized"
        for tau in (5, 3, 4):
            loss_l = loop.run_round(tau)
            loss_v = bank.run_round(tau)
            assert loss_l == loss_v
            np.testing.assert_array_equal(
                loop.synchronized_parameters, bank.synchronized_parameters
            )
        # Noise streams sit at identical positions after identical draws.
        bank_mods = list(bank.backend.model.stream_modules())
        assert len(bank_mods) == 1
        for i, worker in enumerate(loop.workers):
            (loop_mod,) = list(worker.model.stream_modules())
            assert _generator_state(bank_mods[0]._bank_rngs[i]) == _generator_state(
                loop_mod._rng
            )

    def test_stacked_noise_model_matches_reference_streams(self):
        obj = self._objective()
        X = np.random.default_rng(1).normal(size=(M, obj.dim))
        rngs = [np.random.default_rng(s) for s in (5, 6, 7)]
        refs = [np.random.default_rng(s) for s in (5, 6, 7)]
        stacked = obj.stacked_stochastic_gradients(X, rngs)
        for i in range(M):
            np.testing.assert_array_equal(
                stacked[i], obj.stochastic_gradient(X[i], refs[i])
            )
        np.testing.assert_array_equal(
            obj.stacked_values(X), [obj.value(x) for x in X]
        )
        with pytest.raises(ValueError, match="RNG streams"):
            obj.stacked_stochastic_gradients(X, rngs[:1])

    def test_noiseless_objective_needs_no_streams(self):
        obj = QuadraticObjective.random(dim=4, rng=0, noise_std=0.0)
        problem = NoisyQuadraticProblem(obj, rng=0)
        assert not list(problem.stream_modules())
        bank = ParameterBank(problem, M)
        losses = problem.bank_loss(None, None, bank.state())
        assert losses.shape == (M,)

    def test_missing_streams_fail_loudly(self):
        problem = NoisyQuadraticProblem(self._objective(), rng=0)
        bank = ParameterBank(problem, M)
        with pytest.raises(RuntimeError, match="noise stream per"):
            problem.bank_loss(None, None, bank.state())


class TestBankBufferPlumbing:
    def test_parameter_bank_stacks_buffers(self):
        model = MLP(8, C, hidden_sizes=(6,), batch_norm=True, rng=0)
        bank = ParameterBank(model, M)
        assert set(bank.buffers) == {"net.layer1.running_mean", "net.layer1.running_var"}
        for values in bank.buffers.values():
            assert values.shape == (M, 6)
        state = bank.state()
        assert set(state) == set(bank.params) | set(bank.buffers)

    def test_worker_buffers_roundtrip(self):
        model = MLP(8, C, hidden_sizes=(6,), batch_norm=True, rng=0)
        bank = ParameterBank(model, M)
        bank.buffers["net.layer1.running_mean"][1] = 5.0
        bufs = bank.worker_buffers(1)
        np.testing.assert_array_equal(bufs["net.layer1.running_mean"], np.full(6, 5.0))
        target = MLP(8, C, hidden_sizes=(6,), batch_norm=True, rng=1)
        bank.load_worker_buffers(target, 1)
        np.testing.assert_array_equal(
            dict(target.named_buffers())["net.layer1.running_mean"], np.full(6, 5.0)
        )
        with pytest.raises(IndexError):
            bank.worker_buffers(M)

    def test_set_buffer_validates_names(self):
        model = MLP(8, C, hidden_sizes=(6,), batch_norm=True, rng=0)
        with pytest.raises(KeyError, match="no submodule"):
            model.set_buffer("nope.running_mean", np.zeros(6))
        with pytest.raises(KeyError, match="no buffer"):
            model.set_buffer("net.layer1.nope", np.zeros(6))

    def test_buffer_reassignment_stays_registered(self):
        bn = BatchNorm1d(4)
        bn.running_mean = np.ones(4)
        assert dict(bn.named_buffers())["running_mean"] is bn.running_mean
        np.testing.assert_array_equal(bn.running_mean, np.ones(4))

    def test_batchnorm_bank_forward_requires_buffer_state(self):
        model = MLP(8, C, hidden_sizes=(6,), batch_norm=True, rng=0)
        bank = ParameterBank(model, M)
        X = np.zeros((M, B, 8))
        y = np.zeros((M, B), dtype=np.int64)
        with pytest.raises(KeyError, match="ParameterBank.state"):
            model.bank_loss(X, y, bank.params)
        assert model.bank_loss(X, y, bank.state()).shape == (M,)


class TestConvBankUnit:
    @pytest.mark.parametrize("bias", [True, False], ids=["bias", "no_bias"])
    def test_conv2d_bank_matches_per_worker(self, bias):
        rng = np.random.default_rng(0)

        def make():
            return Conv2d(2, 3, kernel_size=3, stride=1, padding=1, bias=bias, rng=7)

        template = make()
        bank = ParameterBank(template, M)
        stacked = rng.normal(size=(M, bank.n_parameters))
        bank.set_stacked_flat(stacked)
        X = rng.normal(size=(M, B, 2, 5, 5))
        out = template.bank_forward(Tensor(X), bank.params)
        out.sum().backward()
        grads = np.concatenate(
            [t.grad.reshape(M, -1) for t in bank.params.values()], axis=1
        )
        for i in range(M):
            ref = make()
            ref.set_flat_parameters(stacked[i])
            ref_out = ref(Tensor(X[i]))
            np.testing.assert_array_equal(out.data[i], ref_out.data)
            ref_out.sum().backward()
            np.testing.assert_array_equal(ref.get_flat_gradients(), grads[i])

    def test_conv2d_bank_rejects_unstacked_input(self):
        conv = Conv2d(1, 2, kernel_size=2, rng=0)
        bank = ParameterBank(conv, M)
        with pytest.raises(ValueError, match="\\(m, B, C, H, W\\)"):
            conv.bank_forward(Tensor(np.zeros((2, 1, 4, 4))), bank.params)

    def test_dropout_without_streams_fails_loudly(self):
        drop = Dropout(0.5, rng=0)
        with pytest.raises(RuntimeError, match="RNG stream per worker"):
            drop.bank_forward(Tensor(np.zeros((M, B, 4))), {})

    def test_attach_bank_streams_validates_architecture(self):
        template = MLP(8, C, hidden_sizes=(6,), dropout=0.3, rng=0)
        mismatched = MLP(8, C, hidden_sizes=(6,), rng=0)  # no dropout
        with pytest.raises(ValueError, match="must match"):
            attach_bank_streams(template, [mismatched])


class TestRegistryModelsRunOnBank:
    """Per-model auto→bank loop equivalence now lives in the consolidated
    matrix (tests/test_equivalence_matrix.py covers every registry entry plus
    batch-norm/dropout variants, byte for byte, on every backend); one
    harness-level run below keeps the run_method plumbing pinned."""

    def _config(self, model, backend):
        return make_config(
            "smoke",
            model=model,
            backend=backend,
            n_train=160,
            n_test=60,
            wall_time_budget=15.0,
            momentum=0.9,
        )

    def test_harness_auto_matches_loop_end_to_end(self):
        record_auto = run_method(self._config("vgg_lite_cnn", "auto"), "pasgd-tau4")
        assert record_auto.config["backend"] == "vectorized"
        record_loop = run_method(self._config("vgg_lite_cnn", "loop"), "pasgd-tau4")
        assert [p.train_loss for p in record_auto.points] == [
            p.train_loss for p in record_loop.points
        ]
        np.testing.assert_array_equal(
            [p.test_accuracy for p in record_auto.points],
            [p.test_accuracy for p in record_loop.points],
        )

    def test_every_registered_model_is_bank_compatible(self):
        from repro.api.registries import MODELS
        from repro.api.registry import filter_kwargs

        for name in available_models():
            builder = MODELS.get(name)
            kwargs = filter_kwargs(
                builder,
                dict(n_features=16, n_classes=C, hidden_sizes=(8,), rng=0),
            )
            assert bank_compatible(builder(**kwargs)), name
