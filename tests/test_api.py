"""Tests for the unified registry + declarative experiment API (repro.api)."""

from __future__ import annotations

import json

import pytest

from repro.api import MODELS, Experiment, Registry, all_registries, filter_kwargs
from repro.experiments.cli import build_parser, main
from repro.experiments.configs import (
    ExperimentConfig,
    available_configs,
    config_spec,
    make_config,
)
from repro.experiments.harness import (
    _build_compute_distribution,
    default_methods,
    parse_method_spec,
)
from repro.models.registry import build_model, infer_image_geometry, register_model
from repro.runtime.distributions import ParetoDelay


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("widget")
        reg.register("a", int)
        assert reg.get("a") is int
        assert reg.names() == ["a"]
        assert "a" in reg and "b" not in reg
        assert len(reg) == 1

    def test_decorator_form_returns_target(self):
        reg = Registry("widget")

        @reg.register("fn")
        def fn():
            return 42

        assert fn() == 42
        assert reg.get("fn") is fn

    def test_duplicate_raises_value_error_listing_names(self):
        reg = Registry("widget")
        reg.register("a", int)
        with pytest.raises(ValueError, match=r"already registered.*\['a'\]"):
            reg.register("a", float)

    def test_overwrite_replaces(self):
        reg = Registry("widget")
        reg.register("a", int)
        reg.register("a", float, overwrite=True)
        assert reg.get("a") is float

    def test_unknown_lists_available(self):
        reg = Registry("widget")
        reg.register("a", int)
        with pytest.raises(ValueError, match=r"unknown widget 'b'.*\['a'\]"):
            reg.get("b")

    def test_build_calls_factory(self):
        reg = Registry("widget")
        reg.register("pair", lambda x, y: (x, y))
        assert reg.build("pair", x=1, y=2) == (1, 2)

    def test_build_filtered_drops_unknown_kwargs(self):
        reg = Registry("widget")
        reg.register("one", lambda x: x)
        assert reg.build_filtered("one", x=3, y="dropped") == 3

    def test_unregister(self):
        reg = Registry("widget")
        reg.register("a", int)
        reg.unregister("a")
        assert "a" not in reg
        with pytest.raises(ValueError):
            reg.unregister("a")

    def test_lazy_populate_runs_once(self):
        calls = []
        reg = Registry("widget", populate=lambda: calls.append(1) or reg.register("x", int))
        assert reg.names() == ["x"]
        assert reg.get("x") is int
        assert calls == [1]

    def test_failed_populate_reraises_root_cause_on_retry(self):
        calls = []

        def populate():
            calls.append(1)
            if len(calls) == 1:
                raise ImportError("missing dependency")
            reg.register("x", int)

        reg = Registry("widget", populate=populate)
        with pytest.raises(ImportError, match="missing dependency"):
            reg.get("x")
        # The second lookup retries population instead of reporting an empty
        # registry that masks the real import failure.
        assert reg.get("x") is int
        assert calls == [1, 1]

    def test_filter_kwargs_respects_var_keyword(self):
        assert filter_kwargs(lambda **kw: kw, {"a": 1}) == {"a": 1}
        assert filter_kwargs(lambda a: a, {"a": 1, "b": 2}) == {"a": 1}

    def test_all_registries_are_populated(self):
        for key, reg in all_registries().items():
            assert reg.names(), f"registry {key} is empty"


class TestModelRegistry:
    def test_duplicate_register_model_raises_value_error(self):
        with pytest.raises(ValueError, match="already registered"):
            register_model("mlp", lambda **kw: None)

    def test_register_model_overwrite_roundtrip(self):
        original = MODELS.get("mlp")
        sentinel = lambda **kw: None  # noqa: E731
        register_model("mlp", sentinel, overwrite=True)
        try:
            assert MODELS.get("mlp") is sentinel
        finally:
            register_model("mlp", original, overwrite=True)

    def test_build_model_unknown_error_message_shape(self):
        with pytest.raises(ValueError, match=r"unknown model 'transformer-xxl'; available: \["):
            build_model("transformer-xxl")

    def test_infer_image_geometry(self):
        assert infer_image_geometry(192) == (3, 8)  # 3x8x8 synthetic CIFAR
        assert infer_image_geometry(16) == (1, 4)
        with pytest.raises(ValueError):
            infer_image_geometry(17)

    def test_cnn_builder_adapts_to_flat_features(self):
        model = build_model("vgg_lite_cnn", n_features=16, n_classes=4, rng=0)
        import numpy as np

        assert model(np.zeros((2, 16))).shape == (2, 4)

    def test_cnn_builder_keeps_explicit_image_size_kwarg(self):
        model = build_model("resnet_lite_cnn", image_size=4, n_classes=3, rng=0)
        import numpy as np

        assert model(np.zeros((2, 3, 4, 4))).shape == (2, 3)

    def test_cnn_builder_rejects_geometry_mismatching_features(self):
        # Explicit geometry that cannot view the dataset's flat features must
        # fail at build time, not with a reshape error deep in forward().
        with pytest.raises(ValueError, match="does not match"):
            build_model("vgg_lite_cnn", n_features=192, in_channels=1, rng=0)


class TestConfigSerialization:
    @pytest.mark.parametrize("name", available_configs())
    def test_round_trip_every_named_config(self, name):
        cfg = make_config(name)
        payload = json.loads(json.dumps(cfg.to_dict()))
        assert ExperimentConfig.from_dict(payload) == cfg

    def test_from_dict_rejects_unknown_field(self):
        payload = make_config("smoke").to_dict()
        payload["warp_factor"] = 9
        with pytest.raises(ValueError, match="unknown config fields"):
            ExperimentConfig.from_dict(payload)

    def test_from_dict_rejects_unknown_model(self):
        payload = make_config("smoke").to_dict()
        payload["model"] = "transformer-xxl"
        with pytest.raises(ValueError, match="unknown model"):
            ExperimentConfig.from_dict(payload)

    def test_from_dict_rejects_unknown_dataset(self):
        payload = make_config("smoke").to_dict()
        payload["dataset"] = "imagenet"
        with pytest.raises(ValueError, match="unknown dataset"):
            ExperimentConfig.from_dict(payload)

    def test_to_dict_rejects_dataset_fn_escape_hatch(self):
        cfg = make_config("smoke", dataset_fn=lambda **kw: None)
        with pytest.raises(ValueError, match="dataset_fn"):
            cfg.to_dict()

    def test_config_spec_is_a_copy(self):
        spec = config_spec("smoke")
        spec["n_workers"] = 99
        assert config_spec("smoke")["n_workers"] == 2

    def test_scale_grows_training_set(self):
        base = make_config("smoke")
        scaled = make_config("smoke", scale=2.0)
        assert scaled.n_train == 2 * base.n_train
        assert scaled.wall_time_budget == pytest.approx(2 * base.wall_time_budget)


class TestMethodSpecs:
    def test_default_lineup_matches_seed(self):
        cfg = make_config("smoke")
        labels = [m.label for m in default_methods(cfg)]
        assert labels == ["sync-sgd", "pasgd-tau8", "adacomm"]

    def test_methods_field_drives_lineup(self):
        cfg = make_config("smoke", methods=("sync-sgd", "pasgd-tau4"))
        labels = [m.label for m in default_methods(cfg)]
        assert labels == ["sync-sgd", "pasgd-tau4"]

    def test_spec_with_kwargs(self):
        cfg = make_config("smoke")
        method = parse_method_spec("fixed:tau=4", cfg)
        assert method.label == "pasgd-tau4"
        assert method.schedule_fn().next_tau() == 4

    def test_adacomm_spec_uses_config_defaults(self):
        cfg = make_config("smoke")
        schedule = parse_method_spec("adacomm", cfg).schedule_fn()
        assert schedule.next_tau() == cfg.adacomm_initial_tau

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError, match="unknown communication schedule"):
            parse_method_spec("quantum-annealing", make_config("smoke"))

    def test_list_valued_spec_argument(self):
        cfg = make_config("smoke")
        method = parse_method_spec("sequence:taus=[4,2,1]", cfg)
        assert method.label == "sequence-3"
        schedule = method.schedule_fn()
        assert [schedule.next_tau() for _ in range(4)] == [4, 2, 1, 1]

    def test_missing_required_argument_raises_value_error(self):
        with pytest.raises(ValueError, match="missing or invalid arguments"):
            parse_method_spec("fixed", make_config("smoke"))

    def test_malformed_pasgd_tau_names_the_spec(self):
        for bad in ("pasgd-tau", "pasgd-taux"):
            with pytest.raises(ValueError, match="malformed tau"):
                parse_method_spec(bad, make_config("smoke"))


class TestDelaySpecs:
    def test_pareto_moment_matched_to_config(self):
        cfg = make_config("smoke", delay="pareto")
        dist = _build_compute_distribution(cfg)
        assert isinstance(dist, ParetoDelay)
        assert dist.mean == pytest.approx(cfg.compute_time)
        assert dist.std == pytest.approx(cfg.compute_time_std_fraction * cfg.compute_time)

    def test_dict_spec_passes_params_verbatim(self):
        cfg = make_config("smoke", delay={"kind": "pareto", "scale": 1.0, "alpha": 3.0})
        dist = _build_compute_distribution(cfg)
        assert isinstance(dist, ParetoDelay) and dist.alpha == 3.0

    def test_zero_std_degenerates_to_constant(self):
        cfg = make_config("smoke", delay="exponential", compute_time_std_fraction=0.0)
        assert _build_compute_distribution(cfg).variance == 0.0

    def test_unknown_delay_raises(self):
        with pytest.raises(ValueError, match="unknown delay distribution"):
            _build_compute_distribution(make_config("smoke", delay="weibull"))

    def test_dict_spec_requires_kind(self):
        with pytest.raises(ValueError, match="'kind'"):
            _build_compute_distribution(make_config("smoke", delay={"scale": 1.0}))

    def test_pareto_delay_runs_end_to_end(self):
        from repro.experiments.harness import run_method

        cfg = make_config("smoke", delay="pareto", wall_time_budget=10.0)
        record = run_method(cfg, "sync-sgd")
        assert record.points, "pareto run produced no metric points"


class TestExperimentBuilder:
    def test_issue_chain_smoke_run(self):
        store = (
            Experiment("smoke")
            .model("vgg_lite_cnn")
            .delay("pareto")
            .methods("sync-sgd", "adacomm")
            .set(wall_time_budget=10.0, adacomm_interval=5.0)
            .run()
        )
        assert set(store.names()) == {"sync-sgd", "adacomm"}

    def test_build_returns_validated_config(self):
        cfg = Experiment("smoke").model("softmax").workers(3).seed(11).build()
        assert (cfg.model, cfg.n_workers, cfg.seed) == ("softmax", 3, 11)

    def test_unknown_component_fails_at_builder_time(self):
        with pytest.raises(ValueError, match="unknown model"):
            Experiment("smoke").model("transformer-xxl")
        with pytest.raises(ValueError, match="unknown delay distribution"):
            Experiment("smoke").delay("weibull")
        with pytest.raises(ValueError, match="unknown communication schedule"):
            Experiment("smoke").methods("quantum-annealing")

    def test_underspecified_method_fails_at_builder_time(self):
        with pytest.raises(ValueError, match="missing or invalid arguments"):
            Experiment("smoke").methods("pasgd")

    def test_dataset_with_intrinsic_features_sizes_the_model(self):
        # spirals ignores n_features (always 2-D); the model must follow the
        # data, not the config knob.
        store = (
            Experiment("smoke")
            .dataset("spirals")
            .methods("sync-sgd")
            .set(wall_time_budget=5.0, n_classes=3)
            .run()
        )
        assert store.names() == ["sync-sgd"]

    def test_delay_with_params_becomes_dict_spec(self):
        cfg = Experiment("smoke").delay("pareto", scale=1.0, alpha=3.0).build()
        assert cfg.delay == {"kind": "pareto", "scale": 1.0, "alpha": 3.0}

    def test_save_and_reload(self, tmp_path):
        path = Experiment("smoke").model("softmax").save(str(tmp_path / "cfg.json"))
        with open(path, encoding="utf-8") as fh:
            cfg = ExperimentConfig.from_dict(json.load(fh))
        assert cfg.model == "softmax"

    def test_accepts_ready_config(self):
        base = make_config("smoke", lr=0.123)
        assert Experiment(base).build().lr == 0.123


class TestCLI:
    def test_set_and_model_parsing(self):
        args = build_parser().parse_args(
            ["--config", "smoke", "--model", "vgg_lite_cnn",
             "--set", "n_workers=4", "--set", "alpha=2.0", "--set", "delay=pareto"]
        )
        assert args.model == "vgg_lite_cnn"
        assert dict(args.overrides) == {"n_workers": 4, "alpha": 2.0, "delay": "pareto"}

    def test_set_rejects_malformed_pair(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--set", "n_workers"])

    def test_list_models(self, capsys):
        assert main(["--list", "models"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert "mlp" in out and "vgg_lite_cnn" in out

    def test_list_configs(self, capsys):
        assert main(["--list", "configs"]) == 0
        assert "smoke" in capsys.readouterr().out.splitlines()

    def test_list_delays_includes_pareto(self, capsys):
        assert main(["--list", "delays"]) == 0
        assert "pareto" in capsys.readouterr().out.splitlines()

    def test_json_config_file_round_trip(self, tmp_path, capsys):
        path = tmp_path / "exp.json"
        cfg = make_config("smoke", wall_time_budget=10.0, methods=("sync-sgd", "adacomm"))
        path.write_text(json.dumps(cfg.to_dict()))
        assert main(["--config", str(path)]) == 0
        out = capsys.readouterr().out
        assert "sync-sgd" in out and "adacomm" in out

    def test_invalid_set_key_exits_with_message(self):
        with pytest.raises(SystemExit, match="invalid --set override"):
            main(["--config", "smoke", "--set", "warp_factor=9"])

    def test_unknown_model_exits_with_message(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["--config", "smoke", "--model", "transformer-xxl"])

    def test_json_config_missing_name_exits_with_message(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"dataset": "synth_cifar10"}')
        with pytest.raises(SystemExit, match="cannot load config"):
            main(["--config", str(path)])

    def test_json_config_unknown_model_exits_with_message(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "model": "nope"}')
        with pytest.raises(SystemExit, match="cannot load config"):
            main(["--config", str(path)])

    def test_model_override_runs_end_to_end(self, capsys):
        assert main(
            ["--config", "smoke", "--model", "vgg_lite_cnn",
             "--set", "n_workers=4", "--set", "alpha=2.0",
             "--set", "wall_time_budget=10.0", "--points", "2"]
        ) == 0
        assert "model=vgg_lite_cnn" in capsys.readouterr().out
