"""Tests for the runtime model: order statistics, network scalings, eq. 7–12."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.distributions import ConstantDelay, ExponentialDelay, ParetoDelay
from repro.runtime.model import (
    RuntimeModel,
    expected_runtime_pasgd,
    expected_runtime_sync,
    speedup_constant_delays,
    speedup_over_sync,
)
from repro.runtime.network import (
    NetworkModel,
    constant_scaling,
    make_scaling,
    parameter_server_scaling,
    reduction_tree_scaling,
    ring_allreduce_scaling,
)
from repro.runtime.order_stats import (
    empirical_max_distribution,
    expected_max_averaged,
    expected_max_exponential,
    expected_max_iid,
    harmonic_number,
)


class TestOrderStats:
    def test_harmonic_number(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_expected_max_exponential_formula(self):
        # E[Y_{m:m}] = y * H_m for exponential compute times (paper, Sec. 3.2).
        assert expected_max_exponential(2.0, 3) == pytest.approx(2.0 * harmonic_number(3))

    def test_expected_max_iid_constant_is_constant(self):
        assert expected_max_iid(ConstantDelay(3.0), 10) == 3.0

    def test_expected_max_iid_exponential_uses_closed_form(self):
        assert expected_max_iid(ExponentialDelay(1.0), 8) == pytest.approx(harmonic_number(8))

    def test_expected_max_monte_carlo_close_to_closed_form(self):
        mc = expected_max_iid(ParetoDelay(1.0, 4.0), 1, n_samples=40000, rng=0)
        assert mc == pytest.approx(ParetoDelay(1.0, 4.0).mean, rel=0.03)

    def test_expected_max_increases_with_workers(self):
        dist = ExponentialDelay(1.0)
        values = [expected_max_iid(dist, m) for m in (1, 2, 4, 8, 16)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_averaging_reduces_expected_max(self):
        # E[Ȳ_{m:m}] < E[Y_{m:m}] — the straggler-mitigation effect (Figure 5).
        dist = ExponentialDelay(1.0)
        no_avg = expected_max_averaged(dist, 16, 1, n_samples=20000, rng=0)
        with_avg = expected_max_averaged(dist, 16, 10, n_samples=20000, rng=0)
        assert with_avg < no_avg

    def test_empirical_max_distribution_mean_shift(self):
        # PASGD's per-iteration runtime should have both smaller mean and lighter tail.
        sync = empirical_max_distribution(ExponentialDelay(1.0), 16, 1, comm_delay=1.0, rng=0)
        pasgd = empirical_max_distribution(ExponentialDelay(1.0), 16, 10, comm_delay=1.0, rng=0)
        assert pasgd.mean() < sync.mean()
        assert np.quantile(pasgd, 0.99) < np.quantile(sync, 0.99)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            expected_max_iid(ExponentialDelay(1.0), 0)
        with pytest.raises(ValueError):
            expected_max_averaged(ExponentialDelay(1.0), 4, 0)
        with pytest.raises(ValueError):
            harmonic_number(0)


class TestNetworkScalings:
    def test_values(self):
        assert constant_scaling(8) == 1.0
        assert parameter_server_scaling(8) == 8.0
        assert reduction_tree_scaling(8) == pytest.approx(6.0)
        assert ring_allreduce_scaling(8) == pytest.approx(2 * 7 / 8)

    def test_single_worker_edge_case(self):
        assert reduction_tree_scaling(1) == 1.0
        assert ring_allreduce_scaling(1) == 1.0

    def test_make_scaling(self):
        assert make_scaling("reduction_tree") is reduction_tree_scaling
        with pytest.raises(ValueError):
            make_scaling("torus")

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            parameter_server_scaling(0)

    def test_network_model_mean_delay(self):
        net = NetworkModel(base_delay=0.5, scaling="parameter_server")
        assert net.mean_delay(4) == pytest.approx(2.0)

    def test_network_model_with_jitter(self):
        net = NetworkModel(base_delay=1.0, scaling="constant", jitter=ExponentialDelay(0.5))
        assert net.mean_delay(4) == pytest.approx(1.5)
        samples = net.sample_delay(4, rng=0, size=2000)
        assert samples.mean() == pytest.approx(1.5, rel=0.1)

    def test_network_model_custom_callable(self):
        net = NetworkModel(base_delay=2.0, scaling=lambda m: m**0.5)
        assert net.mean_delay(4) == pytest.approx(4.0)

    def test_alpha_ratio(self):
        net = NetworkModel(base_delay=4.0, scaling="constant")
        assert net.communication_computation_ratio(4, ConstantDelay(1.0)) == pytest.approx(4.0)

    def test_negative_base_delay(self):
        with pytest.raises(ValueError):
            NetworkModel(base_delay=-1.0)


class TestRuntimeEquations:
    def test_sync_runtime_constant_delays(self):
        # eq. 8 with constants: E[T_sync] = Y + D.
        t = expected_runtime_sync(ConstantDelay(1.0), NetworkModel(2.0, "constant"), m=4)
        assert t == pytest.approx(3.0)

    def test_pasgd_runtime_constant_delays(self):
        # eq. 11 with constants: E[T_PAvg] = Y + D/τ.
        t = expected_runtime_pasgd(ConstantDelay(1.0), NetworkModel(2.0, "constant"), m=4, tau=10)
        assert t == pytest.approx(1.2)

    def test_speedup_formula_eq12(self):
        # speedup = (1 + α) / (1 + α/τ).
        assert speedup_constant_delays(0.9, 1) == pytest.approx(1.0)
        assert speedup_constant_delays(0.9, 10) == pytest.approx(1.9 / 1.09)
        assert speedup_constant_delays(0.0, 100) == pytest.approx(1.0)

    def test_speedup_vectorized(self):
        taus = np.array([1, 10, 100])
        out = speedup_constant_delays(0.5, taus)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_speedup_limits(self):
        # As τ → ∞, the speedup approaches 1 + α.
        assert speedup_constant_delays(0.5, 10**6) == pytest.approx(1.5, rel=1e-4)

    def test_general_speedup_matches_formula_for_constants(self):
        compute = ConstantDelay(1.0)
        net = NetworkModel(base_delay=0.9, scaling="constant")
        s = speedup_over_sync(compute, net, m=4, tau=20)
        assert s == pytest.approx(speedup_constant_delays(0.9, 20))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            speedup_constant_delays(-0.1, 5)
        with pytest.raises(ValueError):
            speedup_constant_delays(0.5, 0)
        with pytest.raises(ValueError):
            expected_runtime_pasgd(ConstantDelay(1.0), NetworkModel(1.0, "constant"), 4, 0)


class TestRuntimeModelClass:
    def test_alpha_and_means(self):
        model = RuntimeModel(ConstantDelay(2.0), NetworkModel(1.0, "constant"), n_workers=4)
        assert model.alpha == pytest.approx(0.5)
        assert model.mean_compute_time == 2.0
        assert model.mean_communication_delay == 1.0

    def test_expected_runtime_total(self):
        model = RuntimeModel(ConstantDelay(1.0), NetworkModel(1.0, "constant"), n_workers=2)
        assert model.expected_runtime(100, tau=1) == pytest.approx(200.0)
        assert model.expected_runtime(100, tau=10) == pytest.approx(110.0)

    def test_speedup_increases_with_tau(self):
        model = RuntimeModel(ConstantDelay(1.0), NetworkModel(0.9, "constant"), n_workers=4)
        assert model.speedup(20) > model.speedup(2) > 1.0 - 1e-9

    def test_iterations_per_second(self):
        model = RuntimeModel(ConstantDelay(1.0), NetworkModel(1.0, "constant"), n_workers=2)
        assert model.iterations_per_second(1) == pytest.approx(0.5)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            RuntimeModel(ConstantDelay(1.0), NetworkModel(1.0, "constant"), n_workers=0)


@settings(max_examples=40, deadline=None)
@given(
    alpha=st.floats(min_value=0.0, max_value=10.0),
    tau1=st.integers(min_value=1, max_value=500),
    tau2=st.integers(min_value=1, max_value=500),
)
def test_property_speedup_monotone_in_tau_and_bounded(alpha, tau1, tau2):
    """Speed-up (eq. 12) is ≥ 1, ≤ 1+α, and monotone non-decreasing in τ."""
    lo, hi = min(tau1, tau2), max(tau1, tau2)
    s_lo = speedup_constant_delays(alpha, lo)
    s_hi = speedup_constant_delays(alpha, hi)
    assert 1.0 - 1e-12 <= s_lo <= 1.0 + alpha + 1e-9
    assert s_hi >= s_lo - 1e-12


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=32),
    base=st.floats(min_value=0.01, max_value=5.0),
)
def test_property_network_scalings_ordering(m, base):
    """Ring all-reduce never costs more than the parameter-server collective."""
    ring = NetworkModel(base, "ring_allreduce").mean_delay(m)
    ps = NetworkModel(base, "parameter_server").mean_delay(m)
    assert ring <= ps + 1e-12
