"""The consolidated loop↔bank↔sharded equivalence matrix.

One parametrized surface replaces the seeded-equivalence assertions that
previously lived scattered across ``test_backends.py`` and
``test_bank_full_coverage.py``: every ``MODELS`` registry entry (plus
batch-norm/dropout variants and the data-free quadratic objective) × every
non-reference backend, byte-compared against the loop reference
implementation — losses, stacked states, synchronized averages, eval losses,
and RNG stream positions.  The matrix itself (cases, cluster builder,
fingerprint) lives in ``tests/conftest.py``; adding a model or a backend
there extends this file automatically.
"""

from __future__ import annotations

import pytest

from tests.conftest import (
    BACKEND_TRANSPORTS,
    EQUIVALENCE_BACKENDS,
    EquivalenceCase,
    assert_fingerprints_identical,
    build_equivalence_cluster,
    equivalence_cases,
    trajectory_fingerprint,
)

CASES = equivalence_cases()


@pytest.fixture(scope="module")
def loop_fingerprints():
    """Loop-reference fingerprints, computed once per workload."""
    cache: dict[str, dict] = {}

    def get(case: EquivalenceCase) -> dict:
        if case.id not in cache:
            cluster = build_equivalence_cluster(case, "loop")
            try:
                cache[case.id] = trajectory_fingerprint(cluster)
            finally:
                cluster.close()
        return cache[case.id]

    return get


@pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
@pytest.mark.parametrize("case", CASES, ids=[c.id for c in CASES])
def test_backend_matches_loop_reference(case, backend, loop_fingerprints):
    cluster = build_equivalence_cluster(case, backend)
    real_backend, transport = BACKEND_TRANSPORTS.get(backend, (backend, "auto"))
    try:
        assert cluster.backend_name == real_backend
        if transport != "auto":
            assert cluster.backend.transport == transport
        fingerprint = trajectory_fingerprint(cluster)
    finally:
        cluster.close()
    assert_fingerprints_identical(
        loop_fingerprints(case), fingerprint, f"{case.id} on {backend}"
    )


@pytest.mark.parametrize("case", CASES, ids=[c.id for c in CASES])
def test_auto_resolves_to_a_bank_backend(case):
    """Every matrix workload runs auto → vectorized (the PR 4 contract)."""
    cluster = build_equivalence_cluster(case, "auto")
    try:
        assert cluster.backend_name == "vectorized", case.id
    finally:
        cluster.close()
