"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_gaussian_blobs
from repro.models.mlp import MLP
from repro.runtime.distributions import ConstantDelay, ExponentialDelay
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_dataset():
    """Small, well-separated 3-class dataset (fast and learnable)."""
    return make_gaussian_blobs(
        n_samples=180, n_features=8, n_classes=3, class_sep=2.5, noise_std=0.6, rng=0
    )


@pytest.fixture
def tiny_model_fn():
    """Factory building a small MLP with a fixed seed (identical replicas)."""

    def factory():
        return MLP(n_features=8, n_classes=3, hidden_sizes=(12,), rng=42)

    return factory


@pytest.fixture
def constant_runtime():
    """Deterministic runtime simulator: Y = 1, D = 2, m = 4."""
    return RuntimeSimulator(
        compute=ConstantDelay(1.0),
        network=NetworkModel(base_delay=2.0, scaling="constant"),
        n_workers=4,
        rng=0,
    )


@pytest.fixture
def stochastic_runtime():
    """Exponential compute times (straggler regime): Y ~ Exp(1), D = 1, m = 4."""
    return RuntimeSimulator(
        compute=ExponentialDelay(1.0),
        network=NetworkModel(base_delay=1.0, scaling="constant"),
        n_workers=4,
        rng=1,
    )
