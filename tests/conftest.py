"""Shared fixtures + the backend-equivalence matrix for the test suite.

Beyond the small workload fixtures, this module is the single home of the
loop↔bank↔sharded **equivalence matrix**: every ``MODELS`` registry entry
(plus batch-norm/dropout variants and the data-free quadratic objective)
crossed with every non-reference execution backend.  ``equivalence_cases()``
and ``EQUIVALENCE_BACKENDS`` parametrize ``tests/test_equivalence_matrix.py``;
``build_equivalence_cluster`` and ``trajectory_fingerprint`` are the shared
drivers, so new models or backends are covered by adding one case or one
name here instead of copying assertions across test files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import pytest

from repro.data.synthetic import make_gaussian_blobs
from repro.models.mlp import MLP
from repro.nn.layers import Linear, Module, Sequential, Sigmoid, Tanh
from repro.nn.losses import bank_cross_entropy, cross_entropy
from repro.runtime.distributions import ConstantDelay, ExponentialDelay
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator
from repro.utils.seeding import SeedSequence, check_random_state


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_dataset():
    """Small, well-separated 3-class dataset (fast and learnable)."""
    return make_gaussian_blobs(
        n_samples=180, n_features=8, n_classes=3, class_sep=2.5, noise_std=0.6, rng=0
    )


@pytest.fixture
def tiny_model_fn():
    """Factory building a small MLP with a fixed seed (identical replicas)."""

    def factory():
        return MLP(n_features=8, n_classes=3, hidden_sizes=(12,), rng=42)

    return factory


@pytest.fixture
def constant_runtime():
    """Deterministic runtime simulator: Y = 1, D = 2, m = 4."""
    return RuntimeSimulator(
        compute=ConstantDelay(1.0),
        network=NetworkModel(base_delay=2.0, scaling="constant"),
        n_workers=4,
        rng=0,
    )


@pytest.fixture
def stochastic_runtime():
    """Exponential compute times (straggler regime): Y ~ Exp(1), D = 1, m = 4."""
    return RuntimeSimulator(
        compute=ExponentialDelay(1.0),
        network=NetworkModel(base_delay=1.0, scaling="constant"),
        n_workers=4,
        rng=1,
    )


# -- backend-equivalence matrix ---------------------------------------------
#
# The contract pinned here is the one every fast backend is built on: with
# the same seeds, its per-step trajectory — per-worker losses, stacked
# parameter states, synchronized averages, eval losses (which see batch-norm
# buffers), and the positions of every RNG stream — must be *byte-identical*
# to the loop reference implementation.  Exact equality, no tolerances.

#: Backends checked against the "loop" reference.  "sharded" and
#: "sharded-shm" are the same backend on its two data planes — the matrix
#: pins byte-identity for the Pipe protocol AND the shared-memory plane.
EQUIVALENCE_BACKENDS = ("vectorized", "sharded", "sharded-shm")

#: pseudo-backend name -> (real backend registry name, shard transport).
BACKEND_TRANSPORTS = {
    "vectorized": ("vectorized", "auto"),
    "sharded": ("sharded", "pipe"),
    "sharded-shm": ("sharded", "shm"),
}

#: Every class in ``src/`` overriding ``bank_forward`` with a concrete
#: implementation.  Pinned in two directions: the ``BANK001`` analysis rule
#: statically cross-checks this set against the classes actually defining
#: ``bank_forward`` (so a new bank-capable layer cannot ship undeclared), and
#: ``tests/test_analysis.py`` asserts at runtime that the models built by
#: ``equivalence_cases()`` instantiate exactly these layers (so a declared
#: layer cannot silently drop out of the matrix).  Adding a layer means
#: adding it here AND giving it a workload below.
BANK_EQUIVALENCE_LAYERS = frozenset(
    {
        # repro.nn.layers
        "BatchNorm1d",
        "Conv2d",
        "Dropout",
        "Flatten",
        "Linear",
        "ReLU",
        "Residual",
        "Sequential",
        "Sigmoid",
        "Tanh",
        "_Pool2d",  # MaxPool2d / AvgPool2d share its implementation
        # repro.models.*
        "LinearRegressionModel",
        "MLP",
        "NoisyQuadraticProblem",
        "ResidualMLP",
        "SmallCNN",
        "SoftmaxRegression",
    }
)

#: n_features used for data cases; must view as a square image (3 × 2 × 2)
#: so the CNN registry entries accept it alongside the dense models.
EQUIVALENCE_FEATURES = 12
_EQ_CLASSES = 4


@dataclass(frozen=True)
class EquivalenceCase:
    """One workload of the matrix: a deterministic model factory + data kind."""

    id: str
    model_fn: Callable
    #: "data" cases shard a dataset across workers; "data_free" cases run a
    #: stochastic objective with ``dataset=None`` (only the quadratic
    #: objective supports this — dataset models need shards by definition).
    kind: str = "data"
    #: Local-optimizer momentum; one case pins the plain-SGD (0.0) update
    #: path, the rest exercise the momentum buffers.
    momentum: float = 0.9


def _registry_model_fn(name: str) -> Callable:
    """A deterministic factory for one ``MODELS`` registry entry."""
    from repro.api.registries import MODELS
    from repro.api.registry import filter_kwargs

    builder = MODELS.get(name)
    kwargs = filter_kwargs(
        builder,
        dict(
            n_features=EQUIVALENCE_FEATURES,
            n_classes=_EQ_CLASSES,
            hidden_sizes=(8,),
            rng=11,
        ),
    )
    return lambda: builder(**kwargs)


class ActivationZoo(Module):
    """Tiny classifier routing through Tanh *and* Sigmoid.

    No registry model uses Sigmoid (and only the MLP ``tanh`` variant uses
    Tanh), so this workload exists purely to keep every activation's
    ``bank_forward`` pinned by the matrix — see ``BANK_EQUIVALENCE_LAYERS``.
    """

    def __init__(self, n_features: int, n_classes: int, rng=None):
        super().__init__()
        gen = check_random_state(rng)
        seeds = SeedSequence(int(gen.integers(0, 2**31 - 1)))
        self.net = Sequential(
            Linear(n_features, 10, rng=seeds.generator()),
            Tanh(),
            Linear(10, 10, rng=seeds.generator()),
            Sigmoid(),
            Linear(10, n_classes, rng=seeds.generator()),
        )

    def forward(self, x):
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)

    def loss(self, x, y):
        return cross_entropy(self(x), y)

    def bank_forward(self, x, params, prefix: str = ""):
        x = self._as_bank_input(x)
        return self.net.bank_forward(x, params, f"{prefix}net.")

    def bank_loss(self, x, y, params):
        return bank_cross_entropy(self.bank_forward(x, params), y)


def _quadratic_model_fn() -> Callable:
    from repro.models.quadratic import NoisyQuadraticProblem, QuadraticObjective

    objective = QuadraticObjective.random(dim=6, rng=0, noise_std=0.1)
    return lambda: NoisyQuadraticProblem(objective, x0=np.ones(6) * 3.0, rng=0)


def equivalence_cases() -> list[EquivalenceCase]:
    """All matrix workloads: every registry model, layer variants, data-free."""
    from repro.models.registry import available_models

    cases = [
        EquivalenceCase(id=name, model_fn=_registry_model_fn(name))
        for name in sorted(available_models())
    ]
    cases.append(
        EquivalenceCase(
            id="mlp+batch_norm+dropout",
            model_fn=lambda: MLP(
                EQUIVALENCE_FEATURES, _EQ_CLASSES, hidden_sizes=(8,),
                batch_norm=True, dropout=0.3, rng=2,
            ),
        )
    )
    cases.append(
        EquivalenceCase(
            id="mlp+plain_sgd",
            model_fn=_registry_model_fn("mlp"),
            momentum=0.0,
        )
    )
    cases.append(
        EquivalenceCase(
            id="activation_zoo",
            model_fn=lambda: ActivationZoo(EQUIVALENCE_FEATURES, _EQ_CLASSES, rng=7),
        )
    )
    cases.append(
        EquivalenceCase(id="noisy_quadratic", model_fn=_quadratic_model_fn(), kind="data_free")
    )
    return cases


def build_equivalence_cluster(
    case: EquivalenceCase, backend: str, n_workers: int = 4, **cluster_kwargs
):
    """A small seeded cluster for one matrix workload on one backend.

    Sharded clusters run on 2 processes (close them after use); all other
    knobs are identical across backends by construction.  ``backend`` may be
    a pseudo-backend from :data:`BACKEND_TRANSPORTS` (e.g. "sharded-shm"),
    which resolves to the real backend name plus a pinned shard transport.
    Extra ``cluster_kwargs`` (``topology``, ``dropout_prob``, ...) pass
    through to :class:`SimulatedCluster` so the method-family tests reuse
    the same seeded workloads.
    """
    from repro.distributed.cluster import SimulatedCluster

    backend, shard_transport = BACKEND_TRANSPORTS.get(backend, (backend, "auto"))

    dataset = (
        None
        if case.kind == "data_free"
        else make_gaussian_blobs(
            n_samples=160,
            n_features=EQUIVALENCE_FEATURES,
            n_classes=_EQ_CLASSES,
            class_sep=2.0,
            rng=3,
        )
    )
    runtime = RuntimeSimulator(
        ConstantDelay(1.0),
        NetworkModel(2.0, "constant"),
        n_workers=n_workers,
        rng=0,
    )
    return SimulatedCluster(
        model_fn=case.model_fn,
        dataset=dataset,
        runtime=runtime,
        n_workers=n_workers,
        batch_size=8,
        lr=0.05,
        momentum=case.momentum,
        weight_decay=1e-4,
        seed=17,
        backend=backend,
        n_shards=2,
        shard_transport=shard_transport,
        **cluster_kwargs,
    )


def _eval_loss_metric(model, X, y):
    was_training = model.training
    model.eval()
    try:
        return float(model.loss(X, y).item())
    finally:
        model.train(was_training)


def trajectory_fingerprint(cluster, rounds: int = 2, tau: int = 3) -> dict:
    """Everything that must match byte-for-byte across backends, per round.

    Collects per-worker period losses, the pre-averaging stacked ``(m, P)``
    states, the synchronized averages, an eval-mode loss of the synchronized
    model (which exercises per-worker batch-norm buffers on data workloads),
    and the final positions of every per-worker RNG stream.
    """
    fingerprint: dict = {"losses": [], "states": [], "synced": [], "eval_losses": []}
    probe = make_gaussian_blobs(
        n_samples=40, n_features=EQUIVALENCE_FEATURES, n_classes=_EQ_CLASSES, rng=9
    )
    data_free = cluster.backend.shard_sizes() is None
    for _ in range(rounds):
        fingerprint["losses"].append(cluster.backend.local_period(tau).tolist())
        fingerprint["states"].append(cluster.backend.get_stacked_states())
        fingerprint["synced"].append(cluster.average_models())
        if not data_free:
            fingerprint["eval_losses"].append(
                cluster.evaluate_synchronized(probe.X, probe.y, _eval_loss_metric)
            )
    fingerprint["rng"] = cluster.backend.rng_fingerprint()
    return fingerprint


def assert_fingerprints_identical(reference: dict, candidate: dict, label: str) -> None:
    """Byte-exact comparison of two :func:`trajectory_fingerprint` results."""
    assert candidate["losses"] == reference["losses"], f"{label}: period losses diverged"
    for round_index, (ref, got) in enumerate(zip(reference["states"], candidate["states"])):
        np.testing.assert_array_equal(
            got, ref, err_msg=f"{label}: stacked states diverged at round {round_index}"
        )
    for round_index, (ref, got) in enumerate(zip(reference["synced"], candidate["synced"])):
        np.testing.assert_array_equal(
            got, ref, err_msg=f"{label}: synchronized params diverged at round {round_index}"
        )
    assert candidate["eval_losses"] == reference["eval_losses"], (
        f"{label}: eval losses diverged (buffer state?)"
    )
    assert candidate["rng"] == reference["rng"], f"{label}: RNG stream positions diverged"
