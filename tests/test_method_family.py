"""Tests for the async & decentralized method family.

Covers the three execution models added on top of the synchronous PASGD
substrate — gossip averaging over sparse topologies, the barrier-free async
parameter server with staleness tracking, and elastic straggler dropout —
plus the divergence-path regressions that ride along (AdaComm under NaN
losses, the guaranteed final evaluation).

The backend-equivalence contract extends to every new path: gossip, async,
and elastic rounds must be byte-identical between the loop reference and the
vectorized bank, because they are built exclusively from backend-generic
operations (``local_period`` / ``get_stacked_states`` /
``set_stacked_states`` / ``broadcast_state``).
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import build_equivalence_cluster, equivalence_cases
from repro.distributed.averaging import weighted_average_states
from repro.distributed.topology import consensus_distance, mixing_matrix_for
from repro.experiments.configs import ExperimentConfig, make_config
from repro.experiments.harness import parse_method_spec, run_method
from repro.obs.events import EVENT_NAMES
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

GOSSIP_WORKERS = 6  # smallest m where the MH chordal ring is not complete

_CASES = {case.id: case for case in equivalence_cases()}
_MLP = _CASES["mlp"]


def _async_fingerprint(cluster, rounds=3, tau=2, damping=0.0):
    out = {"losses": [], "synced": []}
    for _ in range(rounds):
        out["losses"].append(cluster.run_async_round(tau, staleness_damping=damping))
        out["synced"].append(cluster.synchronized_parameters)
    return out


# -- gossip averaging ---------------------------------------------------------


class TestGossipCluster:
    @pytest.mark.parametrize("topology", ["ring", "star", "mh"])
    def test_loop_and_vectorized_are_byte_identical(self, topology):
        ref = build_equivalence_cluster(
            _MLP, "loop", n_workers=GOSSIP_WORKERS, topology=topology
        )
        cand = build_equivalence_cluster(
            _MLP, "vectorized", n_workers=GOSSIP_WORKERS, topology=topology
        )
        for _ in range(2):
            assert cand.run_local_period(3) == ref.run_local_period(3)
            np.testing.assert_array_equal(cand.average_models(), ref.average_models())
        np.testing.assert_array_equal(
            cand.backend.get_stacked_states(), ref.backend.get_stacked_states()
        )

    def test_complete_topology_is_byte_identical_to_default(self):
        default = build_equivalence_cluster(_MLP, "vectorized", n_workers=4)
        complete = build_equivalence_cluster(
            _MLP, "vectorized", n_workers=4, topology="complete"
        )
        for _ in range(2):
            assert complete.run_local_period(3) == default.run_local_period(3)
            np.testing.assert_array_equal(
                complete.average_models(), default.average_models()
            )

    def test_gossip_matches_explicit_mixing_matrix(self):
        cluster = build_equivalence_cluster(
            _MLP, "vectorized", n_workers=GOSSIP_WORKERS, topology="ring"
        )
        cluster.run_local_period(2)
        before = cluster.backend.get_stacked_states().copy()
        averaged = cluster.average_models()
        after = cluster.backend.get_stacked_states()
        W = mixing_matrix_for("ring", GOSSIP_WORKERS)
        np.testing.assert_array_equal(after, W @ before)
        np.testing.assert_array_equal(averaged, after.mean(axis=0))

    def test_gossip_rounds_compound_and_contract(self):
        one = build_equivalence_cluster(
            _MLP, "vectorized", n_workers=GOSSIP_WORKERS, topology="ring"
        )
        three = build_equivalence_cluster(
            _MLP,
            "vectorized",
            n_workers=GOSSIP_WORKERS,
            topology="ring",
            gossip_rounds=3,
        )
        one.run_local_period(2)
        three.run_local_period(2)
        pre = consensus_distance(list(one.backend.get_stacked_states()))
        one.average_models()
        three.average_models()
        d1 = consensus_distance(list(one.backend.get_stacked_states()))
        d3 = consensus_distance(list(three.backend.get_stacked_states()))
        assert d1 < pre and d3 < d1

    def test_gossip_workers_stay_decentralized(self):
        # After a sparse gossip mix, workers must NOT share one model (that
        # would be exact averaging); they only agree in the mean.
        cluster = build_equivalence_cluster(
            _MLP, "vectorized", n_workers=GOSSIP_WORKERS, topology="ring"
        )
        cluster.run_local_period(2)
        cluster.average_models()
        states = cluster.backend.get_stacked_states()
        assert consensus_distance(list(states)) > 0.0

    def test_gossip_emits_events_and_metrics(self):
        assert {"gossip_mix", "async_apply", "worker_dropout"} <= EVENT_NAMES
        with Tracer() as tracer, MetricsRegistry() as registry:
            cluster = build_equivalence_cluster(
                _MLP, "vectorized", n_workers=GOSSIP_WORKERS, topology="mh"
            )
            cluster.run_local_period(2)
            cluster.average_models()
        names = {e["name"] for e in tracer.finish()}
        assert "gossip_mix" in names
        snapshot = registry.snapshot()
        assert snapshot["counters"]["gossip_rounds_total"] == 1.0
        assert snapshot["gauges"]["consensus_distance"] > 0.0

    def test_gossip_rejects_block_momentum(self):
        from repro.optim.block_momentum import BlockMomentum

        with pytest.raises(ValueError, match="block momentum"):
            build_equivalence_cluster(
                _MLP,
                "vectorized",
                n_workers=GOSSIP_WORKERS,
                topology="ring",
                block_momentum=BlockMomentum(0.3),
            )


# -- async parameter server ---------------------------------------------------


class TestAsyncCluster:
    def test_loop_and_vectorized_are_byte_identical(self):
        ref = build_equivalence_cluster(_MLP, "loop", n_workers=4)
        cand = build_equivalence_cluster(_MLP, "vectorized", n_workers=4)
        fp_ref = _async_fingerprint(ref)
        fp_cand = _async_fingerprint(cand)
        assert fp_cand["losses"] == fp_ref["losses"]
        for a, b in zip(fp_cand["synced"], fp_ref["synced"]):
            np.testing.assert_array_equal(a, b)

    def test_same_seed_is_deterministic(self):
        a = _async_fingerprint(build_equivalence_cluster(_MLP, "vectorized"))
        b = _async_fingerprint(build_equivalence_cluster(_MLP, "vectorized"))
        assert a["losses"] == b["losses"]
        for x, y in zip(a["synced"], b["synced"]):
            np.testing.assert_array_equal(x, y)

    def test_staleness_damping_changes_trajectory(self):
        plain = _async_fingerprint(build_equivalence_cluster(_MLP, "vectorized"))
        damped = _async_fingerprint(
            build_equivalence_cluster(_MLP, "vectorized"), damping=0.5
        )
        assert any(
            not np.array_equal(a, b)
            for a, b in zip(plain["synced"], damped["synced"])
        )

    def test_staleness_histogram_and_events(self):
        m = 4
        with Tracer() as tracer, MetricsRegistry() as registry:
            cluster = build_equivalence_cluster(_MLP, "vectorized", n_workers=m)
            cluster.run_async_round(2)
        events = [e for e in tracer.finish() if e["name"] == "async_apply"]
        assert len(events) == m
        # One generation folds m arrivals: the k-th applied update has seen
        # k earlier server versions since its pull.
        assert sorted(e["fields"]["staleness"] for e in events) == list(range(m))
        snapshot = registry.snapshot()
        hist = snapshot["histograms"]["staleness_updates"]
        assert hist["count"] == m
        assert hist["max"] == float(m - 1)
        assert snapshot["counters"]["async_applies_total"] == float(m)

    def test_worker_clocks_advance_independently(self):
        cluster = build_equivalence_cluster(_MLP, "vectorized", n_workers=4)
        runtime = cluster.runtime
        assert np.all(runtime.worker_clocks == 0.0)
        cluster.run_async_round(2)
        first = runtime.worker_clocks.copy()
        assert np.all(first > 0.0)
        cluster.run_async_round(2)
        assert np.all(runtime.worker_clocks > first)
        # The cluster clock tracks the latest arrival, not a barrier sum.
        assert cluster.clock.now == pytest.approx(float(runtime.worker_clocks.max()))

    def test_rejects_bad_arguments(self):
        cluster = build_equivalence_cluster(_MLP, "vectorized")
        with pytest.raises(ValueError):
            cluster.run_async_round(0)
        with pytest.raises(ValueError):
            cluster.run_async_round(2, staleness_damping=-0.1)


# -- elastic stragglers -------------------------------------------------------


class TestElasticCluster:
    def test_dropout_is_deterministic_given_seed(self):
        def survivors_trace(cluster, rounds=4):
            trace = []
            for _ in range(rounds):
                cluster.run_local_period(2)
                s = cluster._last_survivors
                trace.append(None if s is None else s.tolist())
                cluster.average_models()
            return trace

        a = survivors_trace(
            build_equivalence_cluster(_MLP, "vectorized", dropout_prob=0.5)
        )
        b = survivors_trace(
            build_equivalence_cluster(_MLP, "vectorized", dropout_prob=0.5)
        )
        assert a == b
        assert any(s is not None and len(s) < 4 for s in a)

    def test_loop_and_vectorized_are_byte_identical(self):
        ref = build_equivalence_cluster(_MLP, "loop", dropout_prob=0.4)
        cand = build_equivalence_cluster(_MLP, "vectorized", dropout_prob=0.4)
        for _ in range(3):
            assert cand.run_local_period(2) == ref.run_local_period(2)
            np.testing.assert_array_equal(cand.average_models(), ref.average_models())

    def test_dropout_rng_does_not_perturb_worker_streams(self):
        # The elastic RNG is spawned after the worker streams (and only when
        # the feature is on), so the first period's losses — drawn before any
        # averaging — must match the non-elastic cluster exactly.
        plain = build_equivalence_cluster(_MLP, "vectorized")
        elastic = build_equivalence_cluster(_MLP, "vectorized", dropout_prob=0.5)
        assert elastic.run_local_period(3) == plain.run_local_period(3)

    def test_survivor_average_folds_only_survivors(self):
        cluster = build_equivalence_cluster(_MLP, "vectorized", dropout_prob=0.5)
        found = False
        for _ in range(6):
            cluster.run_local_period(2)
            survivors = cluster._last_survivors
            states = cluster.backend.get_stacked_states().copy()
            averaged = cluster.average_models()
            if survivors is not None and 0 < len(survivors) < cluster.n_workers:
                expected = weighted_average_states(
                    [states[i] for i in survivors], [1.0] * len(survivors)
                )
                np.testing.assert_array_equal(averaged, expected)
                found = True
                break
        assert found, "no partial-survivor round in 6 tries (seeded; should not happen)"

    def test_fastest_worker_always_survives(self):
        # A deadline below every per-worker compute time drops everyone; the
        # fastest worker must be resurrected so the round still averages.
        cluster = build_equivalence_cluster(
            _MLP, "vectorized", dropout_deadline=1e-6
        )
        cluster.run_local_period(2)
        survivors = cluster._last_survivors
        assert survivors is not None and len(survivors) == 1
        cluster.average_models()  # completes without raising

    def test_broadcast_rejoins_dropped_workers(self):
        cluster = build_equivalence_cluster(_MLP, "vectorized", dropout_prob=0.6)
        for _ in range(3):
            cluster.run_local_period(2)
            averaged = cluster.average_models()
            states = cluster.backend.get_stacked_states()
            for row in states:  # broadcast reaches every worker, dropped or not
                np.testing.assert_array_equal(row, averaged)

    def test_dropout_emits_events_and_metrics(self):
        with Tracer() as tracer, MetricsRegistry() as registry:
            cluster = build_equivalence_cluster(_MLP, "vectorized", dropout_prob=0.5)
            dropped = 0
            for _ in range(5):
                cluster.run_local_period(2)
                s = cluster._last_survivors
                dropped += cluster.n_workers - len(s)
                cluster.average_models()
        events = [e for e in tracer.finish() if e["name"] == "worker_dropout"]
        assert dropped > 0
        assert sum(e["fields"]["dropped"] for e in events) == dropped
        assert registry.snapshot()["counters"]["worker_dropouts_total"] == float(dropped)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_equivalence_cluster(_MLP, "vectorized", dropout_prob=1.0)
        with pytest.raises(ValueError):
            build_equivalence_cluster(_MLP, "vectorized", dropout_deadline=0.0)
        with pytest.raises(ValueError):
            build_equivalence_cluster(_MLP, "vectorized", gossip_rounds=0)
        with pytest.raises(ValueError):
            build_equivalence_cluster(_MLP, "vectorized", topology="hypercube")


# -- config plumbing ----------------------------------------------------------


class TestConfigPlumbing:
    def test_new_fields_are_sparse_in_to_dict(self):
        payload = make_config("smoke").to_dict()
        for name in (
            "topology",
            "gossip_rounds",
            "staleness_damping",
            "elastic_dropout_prob",
            "elastic_deadline",
        ):
            assert name not in payload
        # Non-default values do serialize and round-trip.
        cfg = make_config("smoke", topology="ring", gossip_rounds=2)
        data = cfg.to_dict()
        assert data["topology"] == "ring" and data["gossip_rounds"] == 2
        assert ExperimentConfig.from_dict(data) == cfg

    def test_default_cell_address_is_unchanged_by_new_fields(self):
        from repro.sweep.spec import cell_hash

        cfg = make_config("smoke")
        legacy_payload = {
            k: v for k, v in cfg.to_dict().items()
        }  # defaults already elided
        assert cell_hash(cfg) == cell_hash(ExperimentConfig.from_dict(legacy_payload))
        assert cell_hash(cfg) != cell_hash(cfg.with_overrides(topology="ring"))

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ValueError):
            make_config("smoke", topology="mesh").validate()
        with pytest.raises(ValueError):
            make_config("smoke", gossip_rounds=0).validate()
        with pytest.raises(ValueError):
            make_config("smoke", elastic_dropout_prob=1.0).validate()
        with pytest.raises(ValueError):
            make_config("smoke", staleness_damping=-1.0).validate()
        with pytest.raises(ValueError):
            make_config("smoke", elastic_deadline=-2.0).validate()


# -- method specs and the harness ---------------------------------------------


class TestMethodSpecs:
    @pytest.fixture
    def cfg(self):
        return make_config("smoke", n_workers=4, wall_time_budget=25.0)

    @pytest.mark.parametrize(
        "spec, label, mode, overrides",
        [
            ("gossip-ring-tau4", "gossip-ring-tau4", "sync",
             {"topology": "ring", "gossip_rounds": 1}),
            ("gossip:topology=star,tau=2,rounds=3", "gossip-star-tau2-r3", "sync",
             {"topology": "star", "gossip_rounds": 3}),
            ("async-tau8", "async-tau8", "async", {}),
            ("async:tau=4,damping=0.5", "async-tau4-d0.5", "async",
             {"staleness_damping": 0.5}),
            ("elastic:p=0.1,tau=4", "elastic-tau4-p0.1", "sync",
             {"elastic_dropout_prob": 0.1, "elastic_deadline": None}),
        ],
    )
    def test_parse_forms(self, cfg, spec, label, mode, overrides):
        method = parse_method_spec(spec, cfg)
        assert method.label == label
        assert method.mode == mode
        assert method.overrides == overrides

    def test_parse_rejects_malformed_specs(self, cfg):
        for bad in ("gossip-tau4", "gossip", "gossip-ring-tauX",
                    "async-tauX", "elastic", "elastic:tau=4"):
            with pytest.raises(ValueError):
                parse_method_spec(bad, cfg)

    def test_classic_specs_are_unchanged(self, cfg):
        method = parse_method_spec("pasgd-tau8", cfg)
        assert method.overrides == {} and method.mode == "sync"
        assert method.label == "pasgd-tau8"

    def test_async_refuses_gossip_topology(self, cfg):
        with pytest.raises(ValueError, match="parameter server"):
            run_method(cfg.with_overrides(topology="ring"), "async-tau4")

    @pytest.mark.parametrize(
        "spec", ["gossip-ring-tau4", "async-tau4", "elastic:p=0.2,tau=4"]
    )
    def test_run_method_executes_family(self, cfg, spec):
        record = run_method(cfg, spec)
        assert len(record.points) >= 2
        assert np.isfinite(record.points[-1].train_loss)

    def test_family_records_tag_their_mode(self, cfg):
        gossip = run_method(cfg, "gossip-ring-tau4")
        assert gossip.config["topology"] == "ring"
        sync = run_method(cfg, "sync-sgd")
        assert "topology" not in sync.config and "mode" not in sync.config
        asyn = run_method(cfg, "async-tau4")
        assert asyn.config["mode"] == "async"
        elastic = run_method(cfg, "elastic:p=0.2,tau=4")
        assert elastic.config["elastic_dropout_prob"] == 0.2


class TestMethodFamilyFrontier:
    def test_campaign_covers_every_execution_model(self, tmp_path):
        from repro.api.registries import SWEEPS
        from repro.experiments.figures import sweep_error_runtime_frontier
        from repro.sweep import ResultStore, SweepRunner
        from repro.sweep.spec import SweepSpec

        spec = SWEEPS.build("method_family_frontier")
        quick = SweepSpec(
            name=spec.name,
            base=spec.base.with_overrides(wall_time_budget=15.0),
            axes={"method": list(spec.axes["method"]), "seed": [7]},
        )
        store = ResultStore(tmp_path)
        report = SweepRunner(store, jobs=1).run(quick)
        assert not report.failed
        rows = sweep_error_runtime_frontier(
            store, target_loss=0.5, addresses=[c.address for c in report.cells]
        )
        labels = {label.split(" :: ")[1] for label, _, _ in rows}
        assert {
            "sync-sgd",
            "pasgd-tau8",
            "adacomm",
            "gossip-ring-tau8",
            "gossip-star-tau8",
            "gossip-mh-tau8",
            "async-tau8",
            "elastic-tau8-p0.1",
        } <= labels


# -- divergence-path regressions ---------------------------------------------


class TestDivergenceRegressions:
    def test_diverging_adacomm_run_completes(self):
        # An absurd learning rate makes the loss overflow to inf/NaN within a
        # few rounds; AdaComm used to die in math.ceil(nan * tau).  Now the
        # controller ignores non-finite observations and keeps its period.
        cfg = make_config("smoke", lr=1e6, wall_time_budget=40.0)
        record = run_method(cfg, "adacomm")
        assert len(record.points) >= 2
        assert not np.isfinite(record.points[-1].train_loss)

    def test_final_point_is_always_evaluated(self):
        cfg = make_config("smoke", eval_every_rounds=3, wall_time_budget=40.0)
        record = run_method(cfg, "pasgd-tau4")
        last = record.points[-1]
        # Whether or not the budget expired on an eval round, the trajectory
        # must end on a genuinely evaluated point.
        assert np.isfinite(last.test_accuracy)
        # Interior non-eval rounds still carry the nan sentinel.
        assert any(np.isnan(p.test_accuracy) for p in record.points[1:-1])
