"""Tests for loss functions and metrics (repro.nn.losses)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.losses import accuracy, cross_entropy, log_softmax, mse_loss, nll_loss, softmax
from repro.nn.tensor import Tensor


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(6, 4)))
        probs = softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6), atol=1e-12)
        assert np.all(probs > 0)

    def test_shift_invariance(self):
        logits = np.random.default_rng(1).normal(size=(3, 5))
        p1 = softmax(Tensor(logits)).data
        p2 = softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(p1, p2, atol=1e-10)

    def test_log_softmax_consistency(self):
        logits = Tensor(np.random.default_rng(2).normal(size=(4, 3)))
        np.testing.assert_allclose(
            log_softmax(logits).data, np.log(softmax(logits).data), atol=1e-10
        )

    def test_numerical_stability_extreme_logits(self):
        logits = Tensor(np.array([[1000.0, 0.0, -1000.0]]))
        out = log_softmax(logits).data
        assert np.all(np.isfinite(out))


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        gen = np.random.default_rng(3)
        logits = gen.normal(size=(8, 5))
        targets = gen.integers(0, 5, size=8)
        loss = cross_entropy(Tensor(logits), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(8), targets].mean()
        assert loss == pytest.approx(expected, abs=1e-10)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((4, 3), -20.0)
        targets = np.array([0, 1, 2, 0])
        logits[np.arange(4), targets] = 20.0
        assert cross_entropy(Tensor(logits), targets).item() < 1e-8

    def test_uniform_logits_loss_is_log_c(self):
        loss = cross_entropy(Tensor(np.zeros((10, 7))), np.zeros(10, dtype=int)).item()
        assert loss == pytest.approx(np.log(7), abs=1e-10)

    def test_gradient_is_probs_minus_onehot(self):
        gen = np.random.default_rng(4)
        logits_data = gen.normal(size=(6, 4))
        targets = gen.integers(0, 4, size=6)
        logits = Tensor(logits_data, requires_grad=True)
        cross_entropy(logits, targets).backward()
        probs = np.exp(logits_data - logits_data.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        onehot = np.eye(4)[targets]
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 6, atol=1e-8)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            nll_loss(Tensor(np.zeros((3, 2))), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            nll_loss(Tensor(np.zeros(3)), np.zeros(3, dtype=int))


class TestMSE:
    def test_value(self):
        pred = Tensor(np.array([[1.0], [2.0]]))
        assert mse_loss(pred, np.array([[0.0], [4.0]])).item() == pytest.approx(2.5)

    def test_zero_at_target(self):
        pred = Tensor(np.ones((3, 2)))
        assert mse_loss(pred, np.ones((3, 2))).item() == 0.0

    def test_gradient(self):
        pred = Tensor(np.array([3.0, 5.0]), requires_grad=True)
        mse_loss(pred, np.array([1.0, 1.0])).backward()
        np.testing.assert_allclose(pred.grad, [2.0, 4.0])


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(4) * 10
        assert accuracy(logits, np.arange(4)) == 1.0

    def test_partial(self):
        logits = np.array([[2.0, 1.0], [0.0, 1.0], [3.0, 0.0], [0.0, 2.0]])
        assert accuracy(logits, np.array([0, 0, 0, 0])) == 0.5

    def test_accepts_tensor(self):
        logits = Tensor(np.eye(3))
        assert accuracy(logits, np.arange(3)) == 1.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(4), np.zeros(4, dtype=int))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=12),
    c=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_cross_entropy_nonnegative_and_bounded_below_by_entropy(n, c, seed):
    """Cross-entropy of any logits is >= 0 and uniform logits give exactly log C."""
    gen = np.random.default_rng(seed)
    logits = gen.normal(size=(n, c))
    targets = gen.integers(0, c, size=n)
    loss = cross_entropy(Tensor(logits), targets).item()
    assert loss >= 0.0
    uniform = cross_entropy(Tensor(np.zeros((n, c))), targets).item()
    assert uniform == pytest.approx(np.log(c), abs=1e-9)
