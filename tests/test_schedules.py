"""Tests for communication schedules (repro.core.schedules)."""

from __future__ import annotations

import pytest

from repro.core.adacomm import AdaCommConfig, AdaCommController
from repro.core.schedules import (
    AdaCommSchedule,
    FixedCommunicationSchedule,
    SequenceCommunicationSchedule,
)


class TestFixedSchedule:
    def test_constant_output(self):
        sched = FixedCommunicationSchedule(7)
        assert [sched.next_tau() for _ in range(5)] == [7] * 5
        assert sched.peek_tau() == 7

    def test_label_for_sync_sgd(self):
        assert FixedCommunicationSchedule(1).label == "sync-sgd"
        assert FixedCommunicationSchedule(20).label == "pasgd-tau20"

    def test_not_adaptive(self):
        assert not FixedCommunicationSchedule(5).is_adaptive

    def test_observe_is_noop(self):
        sched = FixedCommunicationSchedule(5)
        sched.observe(10.0, 1.0, 0.1)
        assert sched.next_tau() == 5

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            FixedCommunicationSchedule(0)


class TestSequenceSchedule:
    def test_emits_sequence_then_repeats_last(self):
        sched = SequenceCommunicationSchedule([8, 4, 2])
        assert [sched.next_tau() for _ in range(5)] == [8, 4, 2, 2, 2]

    def test_peek_does_not_consume(self):
        sched = SequenceCommunicationSchedule([8, 4])
        assert sched.peek_tau() == 8
        assert sched.next_tau() == 8
        assert sched.peek_tau() == 4

    def test_rounds_emitted_and_reset(self):
        sched = SequenceCommunicationSchedule([3, 2, 1])
        sched.next_tau()
        sched.next_tau()
        assert sched.rounds_emitted == 2
        sched.reset()
        assert sched.next_tau() == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SequenceCommunicationSchedule([])
        with pytest.raises(ValueError):
            SequenceCommunicationSchedule([2, 0])


class TestAdaCommSchedule:
    def test_default_construction(self):
        sched = AdaCommSchedule(AdaCommConfig(initial_tau=12, interval_length=10.0))
        assert sched.next_tau() == 12
        assert sched.is_adaptive
        assert sched.label == "adacomm"

    def test_observe_drives_controller(self):
        sched = AdaCommSchedule(
            AdaCommConfig(initial_tau=16, interval_length=10.0, couple_lr=False)
        )
        sched.observe(0.0, 4.0, 0.1)
        sched.observe(10.0, 1.0, 0.1)
        assert sched.next_tau() == 8
        assert len(sched.tau_history) == 2

    def test_accepts_prebuilt_controller(self):
        controller = AdaCommController(AdaCommConfig(initial_tau=5))
        sched = AdaCommSchedule(controller=controller)
        assert sched.next_tau() == 5

    def test_rejects_both_config_and_controller(self):
        with pytest.raises(ValueError):
            AdaCommSchedule(AdaCommConfig(), controller=AdaCommController(AdaCommConfig()))
