"""Tests for the layer library (repro.nn.layers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.tensor import Tensor


class TestModuleBasics:
    def test_parameters_discovered_recursively(self):
        net = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        names = [n for n, _ in net.named_parameters()]
        assert len(names) == 4  # two weights + two biases
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_flat_parameters_roundtrip(self):
        net = Sequential(Linear(3, 5, rng=0), Tanh(), Linear(5, 2, rng=1))
        flat = net.get_flat_parameters()
        assert flat.shape == (net.num_parameters(),)
        perturbed = flat + 1.0
        net.set_flat_parameters(perturbed)
        np.testing.assert_allclose(net.get_flat_parameters(), perturbed)

    def test_set_flat_parameters_wrong_size_raises(self):
        net = Linear(3, 2, rng=0)
        with pytest.raises(ValueError):
            net.set_flat_parameters(np.zeros(5))

    def test_flat_gradients_zero_when_unset(self):
        net = Linear(3, 2, rng=0)
        grads = net.get_flat_gradients()
        np.testing.assert_allclose(grads, np.zeros(net.num_parameters()))

    def test_state_dict_roundtrip(self):
        a = Linear(4, 3, rng=0)
        b = Linear(4, 3, rng=99)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self):
        a = Linear(4, 3, rng=0)
        b = Linear(5, 3, rng=0)
        with pytest.raises((KeyError, ValueError)):
            b.load_state_dict(a.state_dict())

    def test_train_eval_propagates(self):
        net = Sequential(Dropout(0.5, rng=0), Linear(3, 2, rng=0))
        net.eval()
        assert not net.training and not net[0].training
        net.train()
        assert net.training and net[0].training

    def test_zero_grad_clears_all(self):
        net = Linear(3, 2, rng=0)
        out = net(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None


class TestLinear:
    def test_forward_shape_and_value(self):
        layer = Linear(4, 3, rng=0)
        x = np.random.default_rng(0).normal(size=(5, 4))
        out = layer(Tensor(x))
        assert out.shape == (5, 3)
        np.testing.assert_allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        assert layer.num_parameters() == 12

    def test_gradients_flow_to_both_params(self):
        layer = Linear(4, 3, rng=0)
        layer(Tensor(np.ones((2, 4)))).sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(3, 2.0))

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestActivationsAndDropout:
    def test_relu_layer(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_sigmoid_range(self):
        out = Sigmoid()(Tensor(np.linspace(-5, 5, 11)))
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_flatten(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_dropout_eval_is_identity(self):
        layer = Dropout(0.8, rng=0)
        layer.eval()
        x = np.random.default_rng(1).normal(size=(10, 10))
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_dropout_train_scales_survivors(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((2000,))
        out = layer(Tensor(x)).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout scaling
        assert 0.3 < (out > 0).mean() < 0.7

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestConv2d:
    def test_output_shape_with_padding(self):
        conv = Conv2d(3, 8, kernel_size=3, padding=1, rng=0)
        out = conv(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_output_shape_with_stride(self):
        conv = Conv2d(1, 4, kernel_size=3, stride=2, rng=0)
        out = conv(Tensor(np.zeros((1, 1, 9, 9))))
        assert out.shape == (1, 4, 4, 4)

    def test_matches_naive_convolution(self):
        gen = np.random.default_rng(3)
        conv = Conv2d(2, 3, kernel_size=3, rng=0)
        x = gen.normal(size=(1, 2, 5, 5))
        out = conv(Tensor(x)).data
        # Naive direct convolution for comparison.
        w, b = conv.weight.data, conv.bias.data
        expected = np.zeros((1, 3, 3, 3))
        for oc in range(3):
            for i in range(3):
                for j in range(3):
                    patch = x[0, :, i : i + 3, j : j + 3]
                    expected[0, oc, i, j] = np.sum(patch * w[oc]) + b[oc]
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_gradient_matches_numeric(self):
        gen = np.random.default_rng(5)
        conv = Conv2d(1, 2, kernel_size=2, rng=0)
        x_data = gen.normal(size=(1, 1, 4, 4))

        x = Tensor(x_data.copy(), requires_grad=True)
        conv(x).sum().backward()

        eps = 1e-6
        num = np.zeros_like(x_data)
        for idx in np.ndindex(x_data.shape):
            xp = x_data.copy()
            xp[idx] += eps
            xm = x_data.copy()
            xm[idx] -= eps
            fp = conv(Tensor(xp)).sum().item()
            fm = conv(Tensor(xm)).sum().item()
            num[idx] = (fp - fm) / (2 * eps)
        np.testing.assert_allclose(x.grad, num, atol=1e-5)
        assert conv.weight.grad is not None and conv.bias.grad is not None

    def test_rejects_non_nchw(self):
        conv = Conv2d(1, 2, kernel_size=2, rng=0)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((4, 4))))


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(Tensor(x))
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_maxpool_gradient_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        MaxPool2d(2)(x).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_avgpool_values_and_gradient(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        out = AvgPool2d(2)(x)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))


class TestBatchNormAndResidual:
    def test_batchnorm_normalizes_in_train_mode(self):
        bn = BatchNorm1d(4)
        x = np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(64, 4))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), np.ones(4), atol=1e-2)

    def test_batchnorm_eval_uses_running_stats(self):
        bn = BatchNorm1d(2, momentum=1.0)
        x = np.random.default_rng(1).normal(loc=2.0, size=(32, 2))
        bn(Tensor(x))  # one training pass sets running stats
        bn.eval()
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(2), atol=0.1)

    def test_batchnorm_rejects_3d(self):
        with pytest.raises(ValueError):
            BatchNorm1d(4)(Tensor(np.zeros((2, 4, 4))))

    def test_residual_adds_identity(self):
        inner = Linear(4, 4, rng=0)
        inner.weight.data[...] = 0.0
        inner.bias.data[...] = 0.0
        res = Residual(inner)
        x = np.random.default_rng(0).normal(size=(3, 4))
        np.testing.assert_allclose(res(Tensor(x)).data, x)

    def test_residual_registers_inner_params(self):
        res = Residual(Linear(4, 4, rng=0))
        assert res.num_parameters() == 20


class TestSequential:
    def test_len_and_indexing(self):
        net = Sequential(Linear(2, 3, rng=0), ReLU())
        assert len(net) == 2
        assert isinstance(net[1], ReLU)

    def test_callable_with_raw_numpy(self):
        net = Sequential(Linear(2, 2, rng=0))
        out = net(np.ones((4, 2)))
        assert isinstance(out, Tensor) and out.shape == (4, 2)
