"""Tests for the reverse-mode autograd engine (repro.nn.tensor).

The central check is gradient correctness against central finite differences
for every differentiable op, plus broadcasting, graph reuse, and the
``no_grad`` context.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, no_grad, is_grad_enabled


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued fn at x."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = fn(x)
        flat[i] = orig - eps
        f_minus = fn(x)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def check_gradient(op, shape, rng, positive_only: bool = False, atol: float = 1e-5):
    """Compare autograd and numerical gradients for a scalar-reduced op."""
    x_data = rng.normal(size=shape)
    if positive_only:
        x_data = np.abs(x_data) + 0.5

    def scalar_fn(arr):
        return float(op(Tensor(arr)).sum().data)

    x = Tensor(x_data.copy(), requires_grad=True)
    out = op(x).sum()
    out.backward()
    num = numerical_grad(scalar_fn, x_data.copy())
    np.testing.assert_allclose(x.grad, num, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_add_backward(self, rng):
        check_gradient(lambda t: t + 3.0, (4, 3), rng)

    def test_sub_backward(self, rng):
        check_gradient(lambda t: 5.0 - t, (4, 3), rng)

    def test_mul_backward(self, rng):
        check_gradient(lambda t: t * t, (5,), rng)

    def test_div_backward(self, rng):
        check_gradient(lambda t: 1.0 / t, (4,), rng, positive_only=True)

    def test_pow_backward(self, rng):
        check_gradient(lambda t: t**3, (6,), rng)

    def test_neg_backward(self, rng):
        check_gradient(lambda t: -t, (3, 2), rng)

    def test_exp_backward(self, rng):
        check_gradient(lambda t: t.exp(), (4,), rng)

    def test_log_backward(self, rng):
        check_gradient(lambda t: t.log(), (4,), rng, positive_only=True)

    def test_sqrt_backward(self, rng):
        check_gradient(lambda t: t.sqrt(), (4,), rng, positive_only=True)

    def test_tanh_backward(self, rng):
        check_gradient(lambda t: t.tanh(), (5,), rng)

    def test_sigmoid_backward(self, rng):
        check_gradient(lambda t: t.sigmoid(), (5,), rng)

    def test_relu_backward(self, rng):
        x = Tensor(np.array([-2.0, -0.5, 0.5, 3.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 1.0, 1.0])

    def test_clip_backward(self, rng):
        x = Tensor(np.array([-2.0, 0.0, 0.5, 3.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0])


class TestMatmulAndShape:
    def test_matmul_backward(self, rng):
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()

        num_a = numerical_grad(lambda arr: float((arr @ b_data).sum()), a_data.copy())
        num_b = numerical_grad(lambda arr: float((a_data @ arr).sum()), b_data.copy())
        np.testing.assert_allclose(a.grad, num_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, num_b, atol=1e-5)

    def test_matmul_values(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(3, 5)))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_transpose_backward(self, rng):
        check_gradient(lambda t: t.T * 2.0, (3, 5), rng)

    def test_reshape_backward(self, rng):
        check_gradient(lambda t: t.reshape(6) * t.reshape(6), (2, 3), rng)

    def test_reshape_minus_one(self):
        t = Tensor(np.arange(12.0))
        assert t.reshape(3, -1).shape == (3, 4)

    def test_getitem_backward(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        x[1:4].sum().backward()
        expected = np.zeros((5, 3))
        expected[1:4] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_gather_rows(self):
        x = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        idx = np.array([0, 2, 1, 0])
        out = x.gather_rows(idx)
        np.testing.assert_allclose(out.data, [0.0, 5.0, 7.0, 9.0])
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[np.arange(4), idx] = 1.0
        np.testing.assert_allclose(x.grad, expected)


class TestReductions:
    def test_sum_all(self, rng):
        check_gradient(lambda t: t * 1.0, (4, 5), rng)

    def test_sum_axis_keepdims(self, rng):
        x_data = rng.normal(size=(3, 4))
        x = Tensor(x_data, requires_grad=True)
        (x.sum(axis=0, keepdims=True) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((3, 4), 2.0))

    def test_mean_matches_manual(self, rng):
        x = Tensor(rng.normal(size=(6, 2)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((6, 2), 1.0 / 12))

    def test_mean_axis(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))
        np.testing.assert_allclose(x.mean(axis=1).data, x.data.mean(axis=1))

    def test_max_all(self):
        x = Tensor(np.array([1.0, 7.0, 3.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_axis_values(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(x.max(axis=1).data, x.data.max(axis=1))


class TestBroadcasting:
    def test_broadcast_add_bias(self, rng):
        x_data = rng.normal(size=(4, 3))
        b_data = rng.normal(size=(3,))
        x = Tensor(x_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((4, 3)))
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))

    def test_broadcast_mul_column(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        c = Tensor(rng.normal(size=(4, 1)), requires_grad=True)
        (x * c).sum().backward()
        np.testing.assert_allclose(c.grad, x.data.sum(axis=1, keepdims=True))

    def test_scalar_broadcast(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 3.0 + 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 2), 3.0))


class TestGraphBehaviour:
    def test_reused_node_accumulates(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        y = x * 2.0
        z = (y + y * 3.0).sum()  # dz/dx = 2 + 6 = 8
        z.backward()
        np.testing.assert_allclose(x.grad, np.full(3, 8.0))

    def test_leaf_accumulates_over_multiple_backwards(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(2, 4.0))

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_on_non_scalar_requires_grad_arg(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_without_requires_grad_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.sum().backward()

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_no_grad_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
            assert not y.requires_grad
        assert is_grad_enabled()

    def test_copy_preserves_flags(self):
        x = Tensor(np.ones(3), requires_grad=True, name="w")
        c = x.copy()
        assert c.requires_grad and c.name == "w"
        c.data[0] = 5.0
        assert x.data[0] == 1.0


class TestDtypeAndConstruction:
    def test_int_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype in (np.float32, np.float64)

    def test_tensor_of_tensor(self):
        t = Tensor(Tensor([1.0, 2.0]))
        np.testing.assert_allclose(t.data, [1.0, 2.0])

    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 2)))
        assert len(t) == 4 and t.size == 8 and t.ndim == 2


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=5),
    cols=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_linear_gradient_matches_numeric(rows, cols, seed):
    """d/dx sum(x @ w) must equal broadcasted row-sums of w for random shapes."""
    gen = np.random.default_rng(seed)
    x = Tensor(gen.normal(size=(rows, cols)), requires_grad=True)
    w = gen.normal(size=(cols, 3))
    (x @ Tensor(w)).sum().backward()
    expected = np.tile(w.sum(axis=1), (rows, 1))
    np.testing.assert_allclose(x.grad, expected, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_sum_of_parts_equals_whole(seed):
    """Gradient of a sum decomposed as two slices equals the all-ones gradient."""
    gen = np.random.default_rng(seed)
    data = gen.normal(size=(6, 3))
    x = Tensor(data, requires_grad=True)
    (x[:3].sum() + x[3:].sum()).backward()
    np.testing.assert_allclose(x.grad, np.ones((6, 3)))
