"""Tests for the ADACOMM update rules and controller (repro.core.adacomm)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adacomm import (
    AdaCommConfig,
    AdaCommController,
    basic_tau_update,
    estimate_initial_tau,
    lr_coupled_tau_update,
    refined_tau_update,
)
from repro.core.theory import TheoreticalConstants


class TestBasicRule:
    def test_eq17_value(self):
        # τ_l = ceil( sqrt(F_l / F_0) τ_0 )
        assert basic_tau_update(initial_loss=4.0, current_loss=1.0, initial_tau=10) == 5
        assert basic_tau_update(initial_loss=2.0, current_loss=2.0, initial_tau=7) == 7

    def test_rounds_up(self):
        assert basic_tau_update(3.0, 1.0, 10) == math.ceil(10 / math.sqrt(3))

    def test_never_below_one(self):
        assert basic_tau_update(100.0, 1e-9, 10) == 1

    def test_loss_increase_can_increase_tau(self):
        assert basic_tau_update(1.0, 4.0, 10) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            basic_tau_update(0.0, 1.0, 10)
        with pytest.raises(ValueError):
            basic_tau_update(1.0, -1.0, 10)
        with pytest.raises(ValueError):
            basic_tau_update(1.0, 1.0, 0)


class TestLRCoupledRule:
    def test_eq20_value(self):
        # τ_l = ceil( sqrt( (η0/ηl) Fl/F0 ) τ0 ): smaller lr → larger τ.
        assert lr_coupled_tau_update(1.0, 1.0, 10, initial_lr=0.1, current_lr=0.1) == 10
        assert lr_coupled_tau_update(1.0, 1.0, 10, initial_lr=0.1, current_lr=0.025) == 20

    def test_combined_loss_and_lr_effect(self):
        # loss ratio 1/4 (→ ×1/2) and lr ratio 4 (→ ×2) cancel out.
        assert lr_coupled_tau_update(4.0, 1.0, 10, initial_lr=0.4, current_lr=0.1) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            lr_coupled_tau_update(1.0, 1.0, 10, initial_lr=0.0, current_lr=0.1)


class TestRefinedRule:
    def test_uses_basic_rule_when_strictly_decreasing(self):
        # candidate 5 < previous 8 → take the candidate.
        assert refined_tau_update(4.0, 1.0, initial_tau=10, previous_tau=8) == 5

    def test_decays_multiplicatively_when_stalled(self):
        # candidate equals previous → γ-decay instead (eq. 18).
        assert refined_tau_update(1.0, 1.0, initial_tau=10, previous_tau=10, gamma=0.5) == 5

    def test_decay_when_candidate_larger(self):
        assert refined_tau_update(1.0, 4.0, initial_tau=10, previous_tau=12, gamma=0.5) == 6

    def test_gamma_controls_decay(self):
        assert refined_tau_update(1.0, 1.0, 10, previous_tau=9, gamma=0.25) == 2

    def test_never_below_one(self):
        assert refined_tau_update(1.0, 1.0, 10, previous_tau=1, gamma=0.5) == 1

    def test_slack_makes_condition_stricter(self):
        # basic candidate = ceil(sqrt(1/2)·10) = 8.
        # Against previous_tau=8 it is not strictly smaller → γ decay.
        assert refined_tau_update(2.0, 1.0, 10, previous_tau=8, gamma=0.5) == 4
        # Against previous_tau=9 it passes without slack but not with slack 1.
        assert refined_tau_update(2.0, 1.0, 10, previous_tau=9, slack=0) == 8
        assert refined_tau_update(2.0, 1.0, 10, previous_tau=9, slack=1, gamma=0.5) == 4

    def test_lr_coupling_passthrough(self):
        out = refined_tau_update(
            1.0, 1.0, 10, previous_tau=30, initial_lr=0.4, current_lr=0.1
        )
        assert out == 20  # LR-coupled candidate 20 < 30

    def test_validation(self):
        with pytest.raises(ValueError):
            refined_tau_update(1.0, 1.0, 10, previous_tau=0)
        with pytest.raises(ValueError):
            refined_tau_update(1.0, 1.0, 10, previous_tau=5, gamma=1.0)
        with pytest.raises(ValueError):
            refined_tau_update(1.0, 1.0, 10, previous_tau=5, slack=-1)


class TestEstimateInitialTau:
    def test_grid_search_picks_lowest_loss(self):
        losses = {1: 0.9, 10: 0.5, 50: 0.7}
        assert estimate_initial_tau(trial_losses=losses) == 10

    def test_grid_search_tie_prefers_smaller_tau(self):
        losses = {5: 0.5, 20: 0.5}
        assert estimate_initial_tau(trial_losses=losses) == 5

    def test_grid_search_with_candidate_filter(self):
        losses = {1: 0.9, 10: 0.5, 50: 0.2}
        assert estimate_initial_tau(candidate_taus=[1, 10], trial_losses=losses) == 10

    def test_grid_search_missing_candidate_raises(self):
        with pytest.raises(ValueError):
            estimate_initial_tau(candidate_taus=[1, 99], trial_losses={1: 0.5})

    def test_theory_mode_uses_theorem2(self):
        constants = TheoreticalConstants(1.0, 1.0, 1.0, 8, 1.0, 1.0)
        tau = estimate_initial_tau(constants=constants, lr=0.05, interval_length=60.0)
        assert tau == math.ceil(math.sqrt(2 * 1.0 / (0.05**3 * 60.0)))

    def test_theory_mode_clipped_to_max(self):
        constants = TheoreticalConstants(10.0, 1.0, 0.1, 8, 1.0, 10.0)
        assert estimate_initial_tau(constants=constants, lr=0.01, interval_length=1.0, max_tau=50) == 50

    def test_no_inputs_raises(self):
        with pytest.raises(ValueError):
            estimate_initial_tau()


class TestAdaCommConfig:
    def test_defaults_valid(self):
        cfg = AdaCommConfig()
        assert cfg.initial_tau >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaCommConfig(initial_tau=0)
        with pytest.raises(ValueError):
            AdaCommConfig(interval_length=0)
        with pytest.raises(ValueError):
            AdaCommConfig(gamma=1.5)
        with pytest.raises(ValueError):
            AdaCommConfig(min_tau=5, max_tau=2)
        with pytest.raises(ValueError):
            AdaCommConfig(initial_tau=200, max_tau=100)


class TestAdaCommController:
    def test_starts_at_initial_tau(self):
        ctrl = AdaCommController(AdaCommConfig(initial_tau=16, interval_length=10.0))
        assert ctrl.current_tau() == 16

    def test_no_adaptation_before_first_boundary(self):
        ctrl = AdaCommController(AdaCommConfig(initial_tau=16, interval_length=10.0))
        ctrl.observe(0.0, 4.0, lr=0.1)  # sets the reference loss
        assert ctrl.observe(5.0, 1.0, lr=0.1) == 16

    def test_adapts_at_boundary_with_basic_rule(self):
        ctrl = AdaCommController(
            AdaCommConfig(initial_tau=16, interval_length=10.0, couple_lr=False)
        )
        ctrl.observe(0.0, 4.0, lr=0.1)
        new_tau = ctrl.observe(10.0, 1.0, lr=0.1)  # sqrt(1/4)·16 = 8
        assert new_tau == 8
        assert ctrl.interval_index == 1

    def test_gamma_decay_on_plateau(self):
        ctrl = AdaCommController(
            AdaCommConfig(initial_tau=16, interval_length=10.0, couple_lr=False, gamma=0.5)
        )
        ctrl.observe(0.0, 4.0, lr=0.1)
        assert ctrl.observe(10.0, 4.0, lr=0.1) == 8  # no loss progress → γ decay
        assert ctrl.observe(20.0, 4.0, lr=0.1) == 4

    def test_tau_sequence_decreases_as_loss_decreases(self):
        ctrl = AdaCommController(
            AdaCommConfig(initial_tau=20, interval_length=10.0, couple_lr=False)
        )
        losses = [8.0, 4.0, 2.0, 1.0, 0.5, 0.25]
        ctrl.observe(0.0, losses[0], lr=0.1)
        taus = [ctrl.observe(10.0 * (i + 1), loss, lr=0.1) for i, loss in enumerate(losses[1:])]
        assert all(b <= a for a, b in zip(taus, taus[1:]))
        assert taus[-1] < 20

    def test_lr_coupling_raises_tau_when_lr_drops(self):
        ctrl = AdaCommController(
            AdaCommConfig(initial_tau=10, interval_length=10.0, couple_lr=True, max_tau=100)
        )
        ctrl.observe(0.0, 1.0, lr=0.4)
        # Same loss but lr dropped 16×: candidate = ceil(sqrt(16)·10) = 40 > previous 10 → γ decay path
        # is NOT taken because candidate must be strictly smaller; the rule decays instead.
        tau = ctrl.observe(10.0, 1.0, lr=0.025)
        assert tau == 5  # γ-decay of previous 10, since candidate (40) is not < 10

    def test_multiple_boundaries_crossed_adapts_once(self):
        ctrl = AdaCommController(
            AdaCommConfig(initial_tau=16, interval_length=10.0, couple_lr=False)
        )
        ctrl.observe(0.0, 4.0, lr=0.1)
        tau = ctrl.observe(35.0, 1.0, lr=0.1)
        assert tau == 8
        assert ctrl.interval_index == 3  # boundaries at 10, 20, 30 were all crossed

    def test_clamping_to_bounds(self):
        ctrl = AdaCommController(
            AdaCommConfig(initial_tau=4, interval_length=10.0, couple_lr=False, min_tau=2, max_tau=50)
        )
        ctrl.observe(0.0, 1.0, lr=0.1)
        for i in range(10):
            tau = ctrl.observe(10.0 * (i + 1), 1e-8, lr=0.1)
        assert tau == 2

    def test_tau_history_records_adaptations(self):
        ctrl = AdaCommController(AdaCommConfig(initial_tau=8, interval_length=5.0, couple_lr=False))
        ctrl.observe(0.0, 2.0, lr=0.1)
        ctrl.observe(5.0, 1.0, lr=0.1)
        ctrl.observe(10.0, 0.5, lr=0.1)
        assert len(ctrl.tau_history) == 3  # initial + two adaptations
        times = [t for t, _ in ctrl.tau_history]
        assert times == sorted(times)

    def test_reset(self):
        ctrl = AdaCommController(AdaCommConfig(initial_tau=8, interval_length=5.0))
        ctrl.observe(0.0, 2.0, lr=0.1)
        ctrl.observe(5.0, 1.0, lr=0.1)
        ctrl.reset()
        assert ctrl.current_tau() == 8 and ctrl.interval_index == 0

    def test_observe_validation(self):
        ctrl = AdaCommController(AdaCommConfig())
        with pytest.raises(ValueError):
            ctrl.observe(-1.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            ctrl.observe(1.0, -1.0, 0.1)
        with pytest.raises(ValueError):
            ctrl.observe(1.0, 1.0, 0.0)


@settings(max_examples=50, deadline=None)
@given(
    f0=st.floats(min_value=1e-3, max_value=100.0),
    fl=st.floats(min_value=0.0, max_value=100.0),
    tau0=st.integers(min_value=1, max_value=200),
)
def test_property_basic_rule_bounds(f0, fl, tau0):
    """eq. 17 output is ≥ 1 and scales like sqrt of the loss ratio (within ceil slack)."""
    tau = basic_tau_update(f0, fl, tau0)
    exact = math.sqrt(fl / f0) * tau0
    assert tau >= 1
    assert exact <= tau <= max(1.0, exact) + 1.0


@settings(max_examples=50, deadline=None)
@given(
    f0=st.floats(min_value=1e-3, max_value=10.0),
    fl=st.floats(min_value=0.0, max_value=10.0),
    tau0=st.integers(min_value=1, max_value=100),
    prev=st.integers(min_value=1, max_value=100),
    gamma=st.floats(min_value=0.1, max_value=0.9),
)
def test_property_refined_rule_never_exceeds_previous_unless_smaller_candidate(f0, fl, tau0, prev, gamma):
    """eq. 18 either strictly decreases τ (γ path) or returns a candidate < previous."""
    out = refined_tau_update(f0, fl, tau0, previous_tau=prev, gamma=gamma)
    assert out >= 1
    candidate = basic_tau_update(f0, fl, tau0)
    if candidate < prev:
        assert out == candidate
    else:
        assert out <= max(1, math.floor(gamma * prev))
