"""Tests for the simulated distributed substrate (repro.distributed)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import partition_dataset
from repro.distributed.averaging import average_states, weighted_average_states
from repro.distributed.backends import LoopWorkers
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.events import CommunicationEvent, EventLog, LocalPeriodEvent
from repro.distributed.worker import Worker
from repro.distributed.worker_bank import WorkerBank
from repro.models.mlp import MLP
from repro.optim.block_momentum import BlockMomentum
from repro.runtime.distributions import ConstantDelay
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator


class TestAveraging:
    def test_uniform_average(self):
        states = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        np.testing.assert_allclose(average_states(states), [2.0, 3.0])

    def test_average_identity_for_single_state(self):
        s = np.array([1.0, -1.0])
        np.testing.assert_allclose(average_states([s]), s)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            average_states([np.zeros(2), np.zeros(3)])

    def test_empty(self):
        with pytest.raises(ValueError):
            average_states([])

    def test_weighted_average(self):
        states = [np.array([0.0]), np.array([10.0])]
        np.testing.assert_allclose(weighted_average_states(states, [1, 3]), [7.5])

    def test_weighted_average_normalizes(self):
        states = [np.array([2.0]), np.array([4.0])]
        np.testing.assert_allclose(weighted_average_states(states, [10, 10]), [3.0])

    def test_weighted_validation(self):
        with pytest.raises(ValueError):
            weighted_average_states([np.zeros(2)], [1, 2])
        with pytest.raises(ValueError):
            weighted_average_states([np.zeros(2), np.zeros(2)], [0, 0])
        with pytest.raises(ValueError):
            weighted_average_states([np.zeros(2), np.zeros(2)], [-1, 2])


class TestWorker:
    def _make_worker(self, tiny_dataset, worker_id=0, **kwargs):
        model = MLP(n_features=8, n_classes=3, hidden_sizes=(12,), rng=0)
        return Worker(worker_id, model, tiny_dataset, batch_size=16, lr=0.2, rng=0, **kwargs)

    def test_local_step_changes_parameters_and_returns_loss(self, tiny_dataset):
        worker = self._make_worker(tiny_dataset)
        before = worker.get_parameters()
        loss = worker.local_step()
        assert np.isfinite(loss)
        assert not np.allclose(before, worker.get_parameters())
        assert worker.local_steps_taken == 1

    def test_local_period_runs_tau_steps(self, tiny_dataset):
        worker = self._make_worker(tiny_dataset)
        worker.local_period(7)
        assert worker.local_steps_taken == 7

    def test_parameter_roundtrip(self, tiny_dataset):
        worker = self._make_worker(tiny_dataset)
        target = np.arange(worker.model.num_parameters(), dtype=float)
        worker.set_parameters(target)
        np.testing.assert_allclose(worker.get_parameters(), target)

    def test_evaluate_loss_on_shard(self, tiny_dataset):
        worker = self._make_worker(tiny_dataset)
        assert np.isfinite(worker.evaluate_loss())

    def test_training_reduces_loss(self, tiny_dataset):
        worker = self._make_worker(tiny_dataset)
        before = worker.evaluate_loss()
        worker.local_period(60)
        assert worker.evaluate_loss() < before

    def test_invalid_tau(self, tiny_dataset):
        with pytest.raises(ValueError):
            self._make_worker(tiny_dataset).local_period(0)

    def test_negative_worker_id(self, tiny_dataset):
        with pytest.raises(ValueError):
            self._make_worker(tiny_dataset, worker_id=-1)


class TestEventLog:
    def test_breakdown_sums(self):
        log = EventLog()
        log.append(LocalPeriodEvent(0.0, 5.0, tau=5, lr=0.1, iteration_end=5, mean_local_loss=1.0))
        log.append(CommunicationEvent(5.0, 2.0, round_index=1))
        log.append(LocalPeriodEvent(7.0, 5.0, tau=5, lr=0.1, iteration_end=10, mean_local_loss=0.8))
        assert log.total_compute_time() == 10.0
        assert log.total_communication_time() == 2.0
        assert log.total_local_iterations() == 10
        assert log.communication_rounds() == 1
        assert log.breakdown()["total_time"] == 12.0

    def test_chronological_order_enforced(self):
        log = EventLog()
        log.append(CommunicationEvent(5.0, 1.0, round_index=1))
        with pytest.raises(ValueError):
            log.append(CommunicationEvent(1.0, 1.0, round_index=2))

    def test_filters(self):
        log = EventLog()
        log.append(LocalPeriodEvent(0.0, 1.0, 1, 0.1, 1, 0.5))
        log.append(CommunicationEvent(1.0, 1.0, 1))
        assert len(log.local_periods) == 1 and len(log.communications) == 1
        assert len(log) == 2


def _make_cluster(tiny_dataset, tiny_model_fn, n_workers=4, block_momentum=None, **kwargs):
    runtime = RuntimeSimulator(
        ConstantDelay(1.0), NetworkModel(2.0, "constant"), n_workers=n_workers, rng=0
    )
    return SimulatedCluster(
        model_fn=tiny_model_fn,
        dataset=tiny_dataset,
        runtime=runtime,
        n_workers=n_workers,
        batch_size=8,
        lr=0.2,
        block_momentum=block_momentum,
        seed=0,
        **kwargs,
    )


class TestSimulatedCluster:
    def test_workers_start_from_identical_parameters(self, tiny_dataset, tiny_model_fn):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn)
        ref = cluster.workers[0].get_parameters()
        for w in cluster.workers[1:]:
            np.testing.assert_allclose(w.get_parameters(), ref)

    def test_local_period_advances_clock_by_compute_time(self, tiny_dataset, tiny_model_fn):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn)
        cluster.run_local_period(5)
        assert cluster.clock.now == pytest.approx(5.0)  # constant Y=1 per step
        assert cluster.total_local_iterations == 5

    def test_averaging_advances_clock_by_communication_delay(self, tiny_dataset, tiny_model_fn):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn)
        cluster.run_local_period(3)
        cluster.average_models()
        assert cluster.clock.now == pytest.approx(3.0 + 2.0)
        assert cluster.communication_rounds == 1

    def test_averaging_synchronizes_all_workers(self, tiny_dataset, tiny_model_fn):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn)
        cluster.run_local_period(4)
        assert cluster.model_discrepancy() > 0
        averaged = cluster.average_models()
        for w in cluster.workers:
            np.testing.assert_allclose(w.get_parameters(), averaged)
        assert cluster.model_discrepancy() == pytest.approx(0.0, abs=1e-12)

    def test_average_is_mean_of_local_models(self, tiny_dataset, tiny_model_fn):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn)
        cluster.run_local_period(3)
        states = [w.get_parameters() for w in cluster.workers]
        expected = np.mean(np.stack(states), axis=0)
        np.testing.assert_allclose(cluster.average_models(), expected)

    def test_clock_equals_event_log_total(self, tiny_dataset, tiny_model_fn):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn)
        for tau in (3, 5, 2):
            cluster.run_round(tau)
        assert cluster.clock.now == pytest.approx(cluster.events.total_time())
        assert cluster.events.total_local_iterations() == 10

    def test_set_lr_propagates(self, tiny_dataset, tiny_model_fn):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn)
        cluster.set_lr(0.01)
        assert all(w.optimizer.lr == 0.01 for w in cluster.workers)
        with pytest.raises(ValueError):
            cluster.set_lr(0.0)

    def test_training_reduces_global_loss(self, tiny_dataset, tiny_model_fn):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn)
        X, y = tiny_dataset.X, tiny_dataset.y

        def loss_metric(model, Xe, ye):
            return float(model.loss(Xe, ye).item())

        before = cluster.evaluate_synchronized(X, y, loss_metric)
        for _ in range(15):
            cluster.run_round(4)
        after = cluster.evaluate_synchronized(X, y, loss_metric)
        assert after < 0.8 * before

    def test_block_momentum_zero_beta_matches_plain_averaging(self, tiny_dataset, tiny_model_fn):
        plain = _make_cluster(tiny_dataset, tiny_model_fn)
        with_bm = _make_cluster(tiny_dataset, tiny_model_fn, block_momentum=BlockMomentum(0.0))
        for _ in range(3):
            plain.run_round(4)
            with_bm.run_round(4)
        np.testing.assert_allclose(
            plain.synchronized_parameters, with_bm.synchronized_parameters, atol=1e-10
        )

    def test_block_momentum_changes_trajectory(self, tiny_dataset, tiny_model_fn):
        plain = _make_cluster(tiny_dataset, tiny_model_fn)
        with_bm = _make_cluster(tiny_dataset, tiny_model_fn, block_momentum=BlockMomentum(0.5))
        for _ in range(4):
            plain.run_round(4)
            with_bm.run_round(4)
        assert not np.allclose(plain.synchronized_parameters, with_bm.synchronized_parameters)

    def test_partitioned_dataset_input(self, tiny_dataset, tiny_model_fn):
        part = partition_dataset(tiny_dataset, 4, rng=0)
        runtime = RuntimeSimulator(ConstantDelay(1.0), NetworkModel(1.0, "constant"), 4, rng=0)
        cluster = SimulatedCluster(tiny_model_fn, part, runtime, n_workers=4, batch_size=8, lr=0.1)
        assert len(cluster.workers) == 4

    def test_partition_worker_mismatch_raises(self, tiny_dataset, tiny_model_fn):
        part = partition_dataset(tiny_dataset, 3, rng=0)
        runtime = RuntimeSimulator(ConstantDelay(1.0), NetworkModel(1.0, "constant"), 4, rng=0)
        with pytest.raises(ValueError):
            SimulatedCluster(tiny_model_fn, part, runtime, n_workers=4)

    def test_runtime_worker_mismatch_raises(self, tiny_dataset, tiny_model_fn):
        runtime = RuntimeSimulator(ConstantDelay(1.0), NetworkModel(1.0, "constant"), 2, rng=0)
        with pytest.raises(ValueError):
            SimulatedCluster(tiny_model_fn, tiny_dataset, runtime, n_workers=4)

    def test_dataset_free_cluster(self, tiny_model_fn):
        # Quadratic-style objectives need no dataset; workers get shard=None.
        from repro.models.quadratic import NoisyQuadraticProblem, QuadraticObjective

        obj = QuadraticObjective.random(dim=6, rng=0, noise_std=0.1)

        def model_fn():
            return NoisyQuadraticProblem(obj, x0=np.ones(6) * 3.0, rng=0)

        runtime = RuntimeSimulator(ConstantDelay(1.0), NetworkModel(1.0, "constant"), 2, rng=0)
        cluster = SimulatedCluster(model_fn, None, runtime, n_workers=2, lr=0.1, seed=0)
        before = obj.value(cluster.synchronized_parameters)
        for _ in range(20):
            cluster.run_round(5)
        assert obj.value(cluster.synchronized_parameters) < before

    def test_epochs_completed(self, tiny_dataset, tiny_model_fn):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn)
        assert cluster.epochs_completed() == 0.0
        cluster.run_round(10)
        # 10 iterations × 8 batch × 4 workers = 320 samples over a 180-sample dataset.
        assert cluster.epochs_completed() == pytest.approx(320 / 180)


class TestClusterBackendParity:
    """The cluster protocol must hold identically on both execution backends."""

    @pytest.fixture(params=["loop", "vectorized"])
    def backend(self, request):
        return request.param

    def test_backend_class_selection(self, tiny_dataset, tiny_model_fn, backend):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn, backend=backend)
        expected = LoopWorkers if backend == "loop" else WorkerBank
        assert isinstance(cluster.backend, expected)
        assert cluster.backend_name == backend

    def test_workers_start_identical_and_synchronize(self, tiny_dataset, tiny_model_fn, backend):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn, backend=backend)
        ref = cluster.workers[0].get_parameters()
        for w in cluster.workers[1:]:
            np.testing.assert_allclose(w.get_parameters(), ref)
        cluster.run_local_period(4)
        assert cluster.model_discrepancy() > 0
        averaged = cluster.average_models()
        for w in cluster.workers:
            np.testing.assert_allclose(w.get_parameters(), averaged)

    def test_clock_and_event_log(self, tiny_dataset, tiny_model_fn, backend):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn, backend=backend)
        for tau in (3, 5, 2):
            cluster.run_round(tau)
        assert cluster.clock.now == pytest.approx(cluster.events.total_time())
        assert cluster.events.total_local_iterations() == 10
        assert cluster.events.communication_rounds() == 3

    def test_average_is_mean_axis0_of_stacked_states(self, tiny_dataset, tiny_model_fn, backend):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn, backend=backend)
        cluster.run_local_period(3)
        states = cluster.backend.get_stacked_states()
        assert states.shape == (4, cluster.workers[0].get_parameters().size)
        np.testing.assert_allclose(cluster.average_models(), states.mean(axis=0))

    def test_worker_sharding_covers_dataset(self, tiny_dataset, tiny_model_fn, backend):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn, backend=backend)
        indices = np.concatenate(cluster._partition.worker_indices)
        assert len(indices) == len(tiny_dataset)
        assert len(np.unique(indices)) == len(tiny_dataset)
        assert cluster._partition.shard_sizes() == [45, 45, 45, 45]

    def test_backend_evaluate_with_state_restores_workers(
        self, tiny_dataset, tiny_model_fn, backend
    ):
        cluster = _make_cluster(tiny_dataset, tiny_model_fn, backend=backend)
        cluster.run_round(3)
        before = cluster.backend.get_stacked_states()
        cluster.evaluate_synchronized(
            tiny_dataset.X, tiny_dataset.y, lambda m, X, y: float(m.loss(X, y).item())
        )
        np.testing.assert_array_equal(before, cluster.backend.get_stacked_states())

    def test_loop_and_vectorized_agree_on_seeded_run(self, tiny_dataset, tiny_model_fn):
        loop = _make_cluster(tiny_dataset, tiny_model_fn, backend="loop")
        bank = _make_cluster(tiny_dataset, tiny_model_fn, backend="vectorized")
        for tau in (4, 2, 6):
            loss_l = loop.run_round(tau)
            loss_v = bank.run_round(tau)
            assert loss_v == pytest.approx(loss_l, abs=1e-9)
        np.testing.assert_allclose(
            loop.synchronized_parameters, bank.synchronized_parameters, atol=1e-9
        )


@settings(max_examples=30, deadline=None)
@given(
    n_states=st.integers(min_value=1, max_value=6),
    dim=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_average_preserves_mean_and_bounds(n_states, dim, seed):
    """The averaged state lies inside the per-coordinate min/max envelope."""
    gen = np.random.default_rng(seed)
    states = [gen.normal(size=dim) for _ in range(n_states)]
    avg = average_states(states)
    stacked = np.stack(states)
    assert np.all(avg >= stacked.min(axis=0) - 1e-12)
    assert np.all(avg <= stacked.max(axis=0) + 1e-12)
    np.testing.assert_allclose(avg.mean(), stacked.mean(), atol=1e-12)


class TestShardWeightedAveraging:
    """weighted_average_states wired through the cluster on both backends."""

    def _unbalanced_cluster(self, tiny_dataset, tiny_model_fn, backend, weighting):
        from repro.data.partition import PartitionedDataset

        indices = [np.arange(0, 120), np.arange(120, len(tiny_dataset))]  # 120 vs 60
        part = PartitionedDataset(tiny_dataset, indices)
        runtime = RuntimeSimulator(
            ConstantDelay(1.0), NetworkModel(2.0, "constant"), n_workers=2, rng=0
        )
        return SimulatedCluster(
            model_fn=tiny_model_fn,
            dataset=part,
            runtime=runtime,
            n_workers=2,
            batch_size=8,
            lr=0.2,
            seed=0,
            backend=backend,
            weighting=weighting,
        )

    @pytest.mark.parametrize("backend", ["loop", "vectorized"])
    def test_backends_report_shard_sizes(self, tiny_dataset, tiny_model_fn, backend):
        cluster = self._unbalanced_cluster(tiny_dataset, tiny_model_fn, backend, "uniform")
        assert cluster.backend.shard_sizes() == [120, 60]

    @pytest.mark.parametrize("backend", ["loop", "vectorized"])
    def test_shard_size_weighting_matches_manual_average(
        self, tiny_dataset, tiny_model_fn, backend
    ):
        cluster = self._unbalanced_cluster(tiny_dataset, tiny_model_fn, backend, "shard_size")
        cluster.run_local_period(3)
        states = cluster.backend.get_stacked_states()
        expected = (120.0 * states[0] + 60.0 * states[1]) / 180.0
        averaged = cluster.average_models()
        np.testing.assert_allclose(averaged, expected, atol=1e-12)
        # The broadcast state is what every worker now holds.
        for w in cluster.workers:
            np.testing.assert_allclose(w.get_parameters(), averaged, atol=1e-12)

    def test_shard_size_equals_uniform_on_balanced_shards_across_backends(
        self, tiny_dataset, tiny_model_fn
    ):
        results = {}
        for backend in ("loop", "vectorized"):
            runtime = RuntimeSimulator(
                ConstantDelay(1.0), NetworkModel(2.0, "constant"), n_workers=4, rng=0
            )
            cluster = SimulatedCluster(
                model_fn=tiny_model_fn, dataset=tiny_dataset, runtime=runtime,
                n_workers=4, batch_size=8, lr=0.2, seed=0,
                backend=backend, weighting="shard_size",
            )
            cluster.run_round(4)
            results[backend] = cluster.synchronized_parameters
        np.testing.assert_allclose(results["loop"], results["vectorized"], atol=1e-9)

    def test_weighted_trajectory_differs_from_uniform_when_unbalanced(
        self, tiny_dataset, tiny_model_fn
    ):
        uniform = self._unbalanced_cluster(tiny_dataset, tiny_model_fn, "loop", "uniform")
        weighted = self._unbalanced_cluster(tiny_dataset, tiny_model_fn, "loop", "shard_size")
        uniform.run_round(4)
        weighted.run_round(4)
        assert not np.allclose(
            uniform.synchronized_parameters, weighted.synchronized_parameters
        )

    def test_data_free_rejects_shard_size_weighting(self):
        runtime = RuntimeSimulator(
            ConstantDelay(1.0), NetworkModel(2.0, "constant"), n_workers=2, rng=0
        )
        with pytest.raises(ValueError, match="shard_size"):
            SimulatedCluster(
                model_fn=lambda: MLP(n_features=4, n_classes=2, hidden_sizes=(), rng=0),
                dataset=None,
                runtime=runtime,
                n_workers=2,
                seed=0,
                weighting="shard_size",
            )

    def test_unknown_weighting_rejected(self, tiny_dataset, tiny_model_fn):
        runtime = RuntimeSimulator(
            ConstantDelay(1.0), NetworkModel(2.0, "constant"), n_workers=2, rng=0
        )
        with pytest.raises(ValueError, match="weighting"):
            SimulatedCluster(
                model_fn=tiny_model_fn, dataset=tiny_dataset, runtime=runtime,
                n_workers=2, seed=0, weighting="fedavg",
            )

    def test_config_field_flows_through_harness(self):
        from repro.experiments.configs import make_config
        from repro.experiments.harness import run_method

        cfg = make_config(
            "smoke", n_train=120, n_test=40, wall_time_budget=8.0, weighting="shard_size"
        )
        record = run_method(cfg, "sync-sgd")
        assert record.points
        with pytest.raises(ValueError, match="weighting"):
            make_config("smoke", weighting="bogus").validate()
