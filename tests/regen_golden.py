"""Golden-trajectory fixtures: generation logic + regeneration entry point.

The golden suite (``tests/test_golden.py``) byte-compares the full JSON
payload of small seeded end-to-end harness runs against fixtures committed
under ``tests/golden/``.  Any refactor that preserves the simulator's
physics leaves the fixtures untouched; any change that moves a single float
shows up as a byte diff against known-good trajectories.

When a change *intentionally* alters trajectories (a new RNG consumer, a
config-schema change, a different default), regenerate and commit::

    PYTHONPATH=src python -m tests.regen_golden

The payloads are deterministic by construction: seeded NumPy end to end, no
timestamps, canonical JSON (sorted keys, fixed indentation, trailing
newline) — the same bytes on every run of the same environment, and across
backends.  One caveat: bitwise float reproducibility of matmul-heavy
trajectories is only guaranteed per NumPy/BLAS build; on a machine with a
different BLAS (e.g. Accelerate vs OpenBLAS) a golden mismatch with no code
change means *regenerate locally and diff* — an empty diff after
regeneration confirms the tree is fine and only the platform differs.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.configs import ExperimentConfig, make_config
from repro.experiments.harness import run_experiment

__all__ = ["GOLDEN_DIR", "golden_configs", "golden_payload", "render_golden", "main"]

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def golden_configs() -> dict[str, ExperimentConfig]:
    """The fixture workloads: small, fast, and collectively broad.

    Dense + conv + batch-norm/dropout models, multiple methods (fixed τ and
    ADACOMM), both bank-backend paths — so a regression anywhere in the
    data/nn/optim/distributed/harness stack moves at least one fixture.
    """
    base = dict(n_train=160, n_test=60, momentum=0.9)
    return {
        "smoke_mlp_sync_adacomm": make_config(
            "smoke", **base, wall_time_budget=20.0, methods=("sync-sgd", "adacomm")
        ),
        "smoke_cnn_tau4": make_config(
            "smoke", **base, model="vgg_lite_cnn", wall_time_budget=15.0,
            methods=("pasgd-tau4",),
        ),
        "smoke_bn_dropout_tau2": make_config(
            "smoke", **base, wall_time_budget=15.0, methods=("pasgd-tau2",),
            model_kwargs={"batch_norm": True, "dropout": 0.2},
        ),
    }


def golden_payload(config: ExperimentConfig) -> dict:
    """Run one fixture workload end to end and return its full payload."""
    return {"config": config.to_dict(), "runs": run_experiment(config).to_payload()}


def render_golden(payload: dict) -> str:
    """Canonical byte form of a fixture: sorted keys, indent 2, one trailing NL."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, config in golden_configs().items():
        path = GOLDEN_DIR / f"{name}.json"
        content = render_golden(golden_payload(config))
        changed = not path.exists() or path.read_text() != content
        path.write_text(content)
        print(f"[golden] {'wrote  ' if changed else 'kept   '} {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
