"""Tests for optimizers and learning-rate schedules (repro.optim)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.linear import SoftmaxRegression
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor
from repro.optim.block_momentum import BlockMomentum
from repro.optim.lr_schedules import (
    ConstantLR,
    MultiStepLR,
    StepDecayLR,
    TauGatedStepLR,
    make_lr_schedule,
)
from repro.optim.sgd import SGD


class TestSGD:
    def test_single_step_matches_update_rule(self):
        layer = Linear(2, 1, bias=False, rng=0)
        w_before = layer.weight.data.copy()
        x = Tensor(np.array([[1.0, 2.0]]))
        opt = SGD(layer, lr=0.1)
        layer(x).sum().backward()
        opt.step()
        np.testing.assert_allclose(layer.weight.data, w_before - 0.1 * np.array([[1.0], [2.0]]))

    def test_weight_decay_adds_l2_gradient(self):
        layer = Linear(1, 1, bias=False, rng=0)
        layer.weight.data[...] = 2.0
        opt = SGD(layer, lr=0.1, weight_decay=0.5)
        layer.weight.grad = np.zeros((1, 1))
        opt.step()
        # update = lr * weight_decay * w = 0.1 * 0.5 * 2 = 0.1
        np.testing.assert_allclose(layer.weight.data, [[1.9]])

    def test_momentum_accumulates(self):
        layer = Linear(1, 1, bias=False, rng=0)
        layer.weight.data[...] = 0.0
        opt = SGD(layer, lr=1.0, momentum=0.5)
        layer.weight.grad = np.array([[1.0]])
        opt.step()  # v=1, w=-1
        layer.weight.grad = np.array([[1.0]])
        opt.step()  # v=1.5, w=-2.5
        np.testing.assert_allclose(layer.weight.data, [[-2.5]])

    def test_reset_momentum(self):
        layer = Linear(1, 1, bias=False, rng=0)
        layer.weight.data[...] = 0.0
        opt = SGD(layer, lr=1.0, momentum=0.9)
        layer.weight.grad = np.array([[1.0]])
        opt.step()
        opt.reset_momentum()
        layer.weight.grad = np.array([[1.0]])
        opt.step()
        # Without the reset the second update would be 1.9; with it, exactly 1.0 more.
        np.testing.assert_allclose(layer.weight.data, [[-2.0]])

    def test_nesterov_differs_from_heavy_ball(self):
        def run(nesterov):
            layer = Linear(1, 1, bias=False, rng=0)
            layer.weight.data[...] = 0.0
            opt = SGD(layer, lr=0.1, momentum=0.9, nesterov=nesterov)
            for _ in range(3):
                layer.weight.grad = np.array([[1.0]])
                opt.step()
            return layer.weight.data.copy()

        assert not np.allclose(run(True), run(False))

    def test_set_lr(self):
        opt = SGD(Linear(1, 1, rng=0), lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01
        with pytest.raises(ValueError):
            opt.set_lr(0.0)

    def test_skips_params_without_grad(self):
        layer = Linear(2, 2, rng=0)
        before = layer.get_flat_parameters()
        SGD(layer, lr=0.1).step()
        np.testing.assert_allclose(layer.get_flat_parameters(), before)

    def test_validation(self):
        layer = Linear(1, 1, rng=0)
        with pytest.raises(ValueError):
            SGD(layer, lr=0.0)
        with pytest.raises(ValueError):
            SGD(layer, lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(layer, lr=0.1, nesterov=True)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_converges_on_convex_problem(self):
        gen = np.random.default_rng(0)
        X = gen.normal(size=(128, 6))
        y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
        model = SoftmaxRegression(6, 2, rng=0)
        opt = SGD(model, lr=0.5, momentum=0.9)
        first = model.loss(X, y).item()
        for _ in range(80):
            opt.zero_grad()
            model.loss(X, y).backward()
            opt.step()
        assert model.loss(X, y).item() < 0.3 * first


class TestBlockMomentum:
    def test_zero_beta_returns_plain_average(self):
        bm = BlockMomentum(0.0)
        anchor = np.array([1.0, 2.0, 3.0])
        avg = np.array([0.5, 1.5, 2.5])
        np.testing.assert_allclose(bm.apply(anchor, avg, lr=0.1), avg)

    def test_momentum_amplifies_repeated_direction(self):
        bm = BlockMomentum(0.5)
        anchor = np.zeros(2)
        out1 = bm.apply(anchor, anchor - 1.0, lr=1.0)  # block gradient = +1 → u=1 → out=-1
        out2 = bm.apply(out1, out1 - 1.0, lr=1.0)  # block gradient = +1 → u=1.5 → out=out1-1.5
        np.testing.assert_allclose(out1, [-1.0, -1.0])
        np.testing.assert_allclose(out2, [-2.5, -2.5])

    def test_update_rule_matches_eq_24_25(self):
        beta, lr = 0.3, 0.2
        bm = BlockMomentum(beta)
        anchor = np.array([1.0, -1.0])
        avg = np.array([0.6, -0.5])
        g_block = (anchor - avg) / lr
        expected = anchor - lr * g_block  # first round: u = G
        np.testing.assert_allclose(bm.apply(anchor, avg, lr), expected)
        np.testing.assert_allclose(bm.buffer, g_block)

    def test_reset(self):
        bm = BlockMomentum(0.3)
        bm.apply(np.zeros(2), np.ones(2), lr=0.1)
        bm.reset()
        assert bm.buffer is None and bm.n_rounds == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockMomentum(1.0)
        bm = BlockMomentum(0.3)
        with pytest.raises(ValueError):
            bm.apply(np.zeros(2), np.zeros(3), lr=0.1)
        with pytest.raises(ValueError):
            bm.apply(np.zeros(2), np.zeros(2), lr=0.0)


class TestLRSchedules:
    def test_constant(self):
        sched = ConstantLR(0.1)
        assert sched.lr_at(0) == sched.lr_at(1000) == 0.1

    def test_step_decay(self):
        sched = StepDecayLR(lr=1.0, step_epochs=10, gamma=0.1)
        assert sched.lr_at(5) == 1.0
        assert sched.lr_at(15) == pytest.approx(0.1)
        assert sched.lr_at(25) == pytest.approx(0.01)

    def test_multistep(self):
        sched = MultiStepLR(lr=1.0, milestones=(80, 120), gamma=0.1)
        assert sched.lr_at(79) == 1.0
        assert sched.lr_at(80) == pytest.approx(0.1)
        assert sched.lr_at(121) == pytest.approx(0.01)

    def test_multistep_requires_sorted_milestones(self):
        with pytest.raises(ValueError):
            MultiStepLR(lr=1.0, milestones=(120, 80))

    def test_tau_gated_decay_waits_for_tau_one(self):
        # Section 4.3.2: decay is postponed until the communication period is 1.
        sched = TauGatedStepLR(lr=1.0, milestones=(10.0,), gamma=0.1)
        assert sched.lr_at(12, tau=8) == 1.0  # past the milestone but τ > 1: no decay
        assert sched.lr_at(13, tau=8) == 1.0
        assert sched.lr_at(14, tau=1) == pytest.approx(0.1)  # τ reached 1: decay fires
        assert sched.decays_applied == 1
        # Decay is sticky even if τ grows again afterwards.
        assert sched.lr_at(15, tau=4) == pytest.approx(0.1)

    def test_tau_gated_multiple_milestones_fire_together(self):
        sched = TauGatedStepLR(lr=1.0, milestones=(5.0, 10.0), gamma=0.5)
        assert sched.lr_at(12, tau=3) == 1.0
        assert sched.lr_at(12, tau=1) == pytest.approx(0.25)

    def test_factory(self):
        assert isinstance(make_lr_schedule("constant", lr=0.1), ConstantLR)
        assert isinstance(make_lr_schedule("tau_gated", lr=0.1), TauGatedStepLR)
        with pytest.raises(ValueError):
            make_lr_schedule("cosine", lr=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)
        with pytest.raises(ValueError):
            StepDecayLR(lr=0.1, step_epochs=0)


@settings(max_examples=30, deadline=None)
@given(
    lr=st.floats(min_value=1e-4, max_value=1.0),
    gamma=st.floats(min_value=0.05, max_value=0.9),
    epoch=st.floats(min_value=0, max_value=300),
)
def test_property_multistep_lr_is_nonincreasing_and_positive(lr, gamma, epoch):
    sched = MultiStepLR(lr=lr, milestones=(50, 100, 200), gamma=gamma)
    now = sched.lr_at(epoch)
    later = sched.lr_at(epoch + 50)
    assert 0 < later <= now <= lr


@settings(max_examples=30, deadline=None)
@given(beta=st.floats(min_value=0.0, max_value=0.95), seed=st.integers(0, 1000))
def test_property_block_momentum_first_round_equals_plain_average(beta, seed):
    """With an empty buffer the first block-momentum round returns the plain average."""
    gen = np.random.default_rng(seed)
    anchor = gen.normal(size=5)
    avg = gen.normal(size=5)
    out = BlockMomentum(beta).apply(anchor, avg, lr=0.1)
    np.testing.assert_allclose(out, avg, atol=1e-10)
