"""Tests for the runtime simulator and virtual clock accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.distributions import ConstantDelay, ExponentialDelay
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator
from repro.utils.timer import Stopwatch, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)
        assert clock.n_advances == 2

    def test_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(3.0)
        clock.reset()
        assert clock.now == 0.0 and clock.n_advances == 0


class TestStopwatch:
    def test_measures_positive_time(self):
        with Stopwatch() as sw:
            sum(range(10000))
        assert sw.elapsed > 0

    def test_double_start_raises(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()


class TestRuntimeSimulator:
    def test_constant_delays_are_deterministic(self, constant_runtime):
        timing = constant_runtime.sample_local_period(5)
        assert timing.compute_time == pytest.approx(5.0)  # 5 steps × Y=1 (max over equal workers)
        assert constant_runtime.sample_communication() == pytest.approx(2.0)

    def test_per_worker_compute_shape(self, constant_runtime):
        timing = constant_runtime.sample_local_period(3)
        assert timing.per_worker_compute.shape == (4,)
        assert timing.total == pytest.approx(3.0)

    def test_accounting_accumulates(self, constant_runtime):
        constant_runtime.sample_local_period(4)
        constant_runtime.sample_communication()
        constant_runtime.sample_local_period(4)
        breakdown = constant_runtime.breakdown()
        assert breakdown["compute_time"] == pytest.approx(8.0)
        assert breakdown["communication_time"] == pytest.approx(2.0)
        assert breakdown["n_local_steps"] == 8
        assert breakdown["n_communication_rounds"] == 1

    def test_reset_accounting(self, constant_runtime):
        constant_runtime.sample_local_period(2)
        constant_runtime.reset_accounting()
        assert constant_runtime.total_compute_time == 0.0
        assert constant_runtime.n_local_steps == 0

    def test_local_step_is_max_over_workers(self):
        sim = RuntimeSimulator(ExponentialDelay(1.0), NetworkModel(0.0, "constant"), n_workers=8, rng=0)
        # A single parallel step across 8 exponential workers averages well above 1.
        draws = [sim.sample_local_step() for _ in range(2000)]
        assert np.mean(draws) > 1.5

    def test_period_straggler_mitigation(self):
        # Per-iteration compute cost of a τ=10 period should be lower than 10 single
        # steps taken with a barrier after each one.
        sim = RuntimeSimulator(ExponentialDelay(1.0), NetworkModel(0.0, "constant"), n_workers=16, rng=0)
        period_costs = [sim.sample_local_period(10).compute_time / 10 for _ in range(400)]
        sim2 = RuntimeSimulator(ExponentialDelay(1.0), NetworkModel(0.0, "constant"), n_workers=16, rng=1)
        step_costs = [sim2.sample_local_step() for _ in range(400)]
        assert np.mean(period_costs) < np.mean(step_costs)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RuntimeSimulator(ConstantDelay(1.0), NetworkModel(1.0, "constant"), n_workers=0)
        sim = RuntimeSimulator(ConstantDelay(1.0), NetworkModel(1.0, "constant"), n_workers=2)
        with pytest.raises(ValueError):
            sim.sample_local_period(0)

    def test_reproducible_with_seed(self):
        a = RuntimeSimulator(ExponentialDelay(1.0), NetworkModel(1.0, "constant"), 4, rng=42)
        b = RuntimeSimulator(ExponentialDelay(1.0), NetworkModel(1.0, "constant"), 4, rng=42)
        assert a.sample_local_period(5).compute_time == b.sample_local_period(5).compute_time
