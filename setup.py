"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments without the ``wheel`` package (legacy editable install path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of ADACOMM: Adaptive Communication Strategies to Achieve the "
        "Best Error-Runtime Trade-off in Local-Update SGD (Wang & Joshi, MLSys 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
